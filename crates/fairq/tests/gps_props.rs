//! Property tests for the GPS fluid reference — the yardstick every
//! scheduler in the workspace is measured against, so its own invariants
//! get the heaviest scrutiny.

use proptest::prelude::*;

use fairq::gps_finish_times;
use traffic::{FlowId, Packet, Time};

#[derive(Debug, Clone)]
struct Arrival {
    flow: u8,
    gap_us: u16,
    bytes: u16,
}

fn arrivals() -> impl Strategy<Value = Vec<Arrival>> {
    proptest::collection::vec(
        (0u8..3, 0u16..5000, 40u16..1500).prop_map(|(flow, gap_us, bytes)| Arrival {
            flow,
            gap_us,
            bytes,
        }),
        1..80,
    )
}

fn build(arrivals: &[Arrival]) -> Vec<Packet> {
    let mut t = 0.0;
    arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| {
            t += f64::from(a.gap_us) * 1e-6;
            Packet {
                flow: FlowId(u32::from(a.flow)),
                size_bytes: u32::from(a.bytes),
                arrival: Time(t),
                seq: i as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GPS never finishes a packet before it could be transmitted alone:
    /// finish >= arrival + L/R, and per-flow finishes are FIFO-monotone.
    #[test]
    fn finishes_respect_physics_and_fifo(
        arrivals in arrivals(),
        weights in proptest::collection::vec(1u8..9, 3),
    ) {
        let rate = 1e6;
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let trace = build(&arrivals);
        let fin = gps_finish_times(&trace, &w, rate);
        let mut last_per_flow = [f64::NEG_INFINITY; 3];
        for (p, f) in trace.iter().zip(&fin) {
            prop_assert!(
                f.seconds() + 1e-12 >= p.arrival.seconds() + p.size_bits() / rate,
                "{:?} finished impossibly early: {} < {} + {}",
                p, f.seconds(), p.arrival.seconds(), p.size_bits() / rate
            );
            let i = p.flow.0 as usize;
            prop_assert!(
                f.seconds() >= last_per_flow[i] - 1e-12,
                "flow {i} finishes out of FIFO order"
            );
            last_per_flow[i] = f.seconds();
        }
    }

    /// Work conservation: the last GPS finish equals total bits over the
    /// link rate whenever arrivals never let the system go idle, and is
    /// never earlier than that in general.
    #[test]
    fn work_conservation(arrivals in arrivals()) {
        let rate = 1e6;
        let mut trace = build(&arrivals);
        // Force a single busy period: everything arrives at t=0.
        for p in &mut trace {
            p.arrival = Time(0.0);
        }
        let fin = gps_finish_times(&trace, &[1.0, 2.0, 3.0], rate);
        let total_bits: f64 = trace.iter().map(|p| p.size_bits()).sum();
        let last = fin.iter().map(|t| t.seconds()).fold(0.0, f64::max);
        prop_assert!(
            (last - total_bits / rate).abs() < 1e-9,
            "busy-period makespan {last} vs {}",
            total_bits / rate
        );
    }

    /// Scale invariance: doubling every weight changes nothing (weights
    /// are shares, not absolutes).
    #[test]
    fn weights_are_scale_invariant(arrivals in arrivals()) {
        let rate = 1e6;
        let trace = build(&arrivals);
        let a = gps_finish_times(&trace, &[1.0, 2.0, 5.0], rate);
        let b = gps_finish_times(&trace, &[2.0, 4.0, 10.0], rate);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.seconds() - y.seconds()).abs() < 1e-9);
        }
    }

    /// A flow served alongside competitors never finishes earlier than
    /// when it has the link to itself (isolation sanity).
    #[test]
    fn competition_never_helps(arrivals in arrivals()) {
        let rate = 1e6;
        let trace = build(&arrivals);
        let together = gps_finish_times(&trace, &[1.0, 1.0, 1.0], rate);
        // Flow 0 alone: filter the trace, re-run, compare its packets.
        let solo: Vec<Packet> = trace
            .iter()
            .filter(|p| p.flow == FlowId(0))
            .cloned()
            .collect();
        if solo.is_empty() {
            return Ok(());
        }
        let solo_fin = gps_finish_times(&solo, &[1.0], rate);
        let mut k = 0;
        for (p, f) in trace.iter().zip(&together) {
            if p.flow == FlowId(0) {
                prop_assert!(
                    f.seconds() + 1e-9 >= solo_fin[k].seconds(),
                    "competition sped flow 0 up"
                );
                k += 1;
            }
        }
    }
}
