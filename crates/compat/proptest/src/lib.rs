//! A self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's API that the workspace's property
//! tests actually use: value *strategies* (ranges, tuples, `Just`,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `any::<bool>()`), the
//! `proptest!` test-runner macro with `ProptestConfig::with_cases`, and
//! the `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim.
//! * **Deterministic seeding.** Each test derives its RNG from the test
//!   function name and case index, so every run (and CI) explores the
//!   same cases. There is no `PROPTEST_` environment handling.
//!
//! Both keep the tests meaningful (they still sample hundreds of random
//! programs per property) while keeping this stand-in small and
//! dependency-free.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Test-case failure carried out of a `proptest!` body by the
/// `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic RNG behind every strategy (xoshiro-style splitmix).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (bound > 0), bias negligible for
    /// the bounds used in tests.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
///
/// Object-safe for the `sample` half, so `Box<dyn Strategy<Value = T>>`
/// works (needed by `prop_oneof!`).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: fmt::Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T: fmt::Debug + Clone> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy (helper for `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: fmt::Debug + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Clone {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range boolean strategy (also exposed as [`bool::ANY`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = std::primitive::bool;
    fn sample(&self, rng: &mut TestRng) -> std::primitive::bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for std::primitive::bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Uniform over `true`/`false`.
    pub const ANY: super::AnyBool = super::AnyBool;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Weighted choice among strategies of a common value type.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T: fmt::Debug + Clone> OneOf<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs a positive total weight"
        );
        Self { arms }
    }
}

impl<T: fmt::Debug + Clone> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum covers all picks")
    }
}

/// Weighted strategy union: `prop_oneof![ 3 => a, 1 => b ]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::boxed($strategy))),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                *l,
                *r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Derives a stable 64-bit seed from a test's name.
pub fn seed_of(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?} ",)+),
                    $(&$arg),+
                );
                let outcome = (|| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((0u8..4, crate::bool::ANY).prop_map(|(a, b)| (a, b)), 1..9)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, _) in v {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn oneof_respects_arms(x in prop_oneof![3 => Just(1u32), 1 => (5u32..7)]) {
            prop_assert!(x == 1 || x == 5 || x == 6, "unexpected {x}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = crate::collection::vec(0u32..1000, 5..20);
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "property always_fails failed at case 1/")]
    fn failures_report_case_and_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
