//! A self-contained stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of criterion's API that the workspace's bench
//! targets use: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple: each benchmark body is warmed up
//! briefly, then timed over enough iterations to fill a short window,
//! and the mean time per iteration is printed (with element throughput
//! when declared). There is no statistical analysis, HTML report, or
//! saved baseline — the serious machine-readable numbers in this
//! workspace come from the `bench` crate's binaries instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: let caches/allocators settle.
        let warm_until = Instant::now() + Duration::from_millis(30);
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        // Measure in growing batches until the window is filled.
        let mut iters = 1u64;
        let mut total = Duration::ZERO;
        let mut count = 0u64;
        let budget = Duration::from_millis(200);
        while total < budget {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            count += iters;
            iters = iters.saturating_mul(2).min(1 << 20);
        }
        self.mean_s = total.as_secs_f64() / count as f64;
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { mean_s: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.mean_s;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12} elem/s", eng(n as f64 / per_iter))
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12} B/s", eng(n as f64 / per_iter))
        }
        _ => String::new(),
    };
    println!("bench {label:<56} {:>12}/iter{rate}", time(per_iter));
}

fn time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the registered groups.
///
/// `--list` support keeps `cargo test --benches`-style invocations (which
/// probe bench binaries with `--list --format terse`) from running the
/// full measurement loop.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("insert", 42).to_string(), "insert/42");
        assert_eq!(BenchmarkId::from_parameter("wfq").to_string(), "wfq");
    }

    #[test]
    fn time_and_eng_formatting() {
        assert_eq!(time(2.5), "2.500 s");
        assert_eq!(time(2.5e-3), "2.500 ms");
        assert_eq!(time(2.5e-6), "2.500 us");
        assert_eq!(time(2.5e-9), "2.5 ns");
        assert_eq!(eng(2.5e9), "2.50G");
        assert_eq!(eng(5.0), "5.0");
    }
}
