//! Deterministic fault models for the sorter's on-chip state.
//!
//! The paper's circuit keeps every scheduling decision in SRAM: trie
//! node occupancy words (§III-A), translation-table entries (§III-D),
//! and the linked-list tag store (§III-C). Real 130-nm silicon loses
//! bits in exactly that state to single-event upsets (SEUs), so this
//! crate models them — reproducibly:
//!
//! * [`FaultSpec`] / [`FaultPlan`] — a seeded plan of single/multi-bit
//!   flips, scheduled at operation indices over a run. Built on
//!   [`traffic::rng`], so two runs with the same spec corrupt the same
//!   words on the same operations; there is no wall-clock anywhere.
//! * [`FaultTarget`] — the narrow injection surface a corruptible
//!   structure implements (the trie, the translation table, and the
//!   SRAM behind the tag store all do). A target is just an indexable
//!   array of words with a known usable width; the plan picks a word
//!   and a mask, the target XORs them in.
//! * [`FaultPolicy`] — what the scheduler does about damage:
//!   fail-fast, detect-and-count (serve on, degraded but observable),
//!   or scrub-and-repair (rebuild trie sections from the translation
//!   table's ground truth).
//! * [`FaultLedger`] — the per-run record of every injected fault and
//!   its fate (detected by parity / scrub / structural check, repaired,
//!   or silent), from which the reliability counters and the
//!   byte-deterministic `--fault-report` file derive.
//!
//! The crate is deliberately free of scheduler knowledge: it produces
//! plans and keeps books. Detection and repair live with the structures
//! themselves (`tagsort`, `hwsim`) and the scheduler that drives them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use traffic::rng::Rng;

/// Maximum bit flips a single fault may carry (multi-bit upsets from one
/// particle strike are spatially local; 8 covers every published MBU
/// pattern for the node sizes modeled here).
pub const MAX_FAULT_BITS: u32 = 8;

/// A corruptible state component of the scheduler datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultComponent {
    /// Multi-bit trie node occupancy words (all levels, root included).
    Trie,
    /// Translation-table entries (presence bit + link address).
    Translation,
    /// Tag-store link words in external SRAM.
    TagStore,
    /// Packet-buffer descriptor words (flow id + length) in the
    /// scheduler's payload memory — damage here corrupts the packet a
    /// sorted tag points at, not the sort order itself.
    Buffer,
}

impl FaultComponent {
    /// Every concrete component, in the order `any` cycles through.
    pub const ALL: [FaultComponent; 4] = [
        FaultComponent::Trie,
        FaultComponent::Translation,
        FaultComponent::TagStore,
        FaultComponent::Buffer,
    ];

    /// Stable lowercase name (spec syntax and report lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultComponent::Trie => "trie",
            FaultComponent::Translation => "translation",
            FaultComponent::TagStore => "tagstore",
            FaultComponent::Buffer => "buffer",
        }
    }
}

impl fmt::Display for FaultComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the scheduler does when state damage is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPolicy {
    /// Panic on the first detected fault — the bring-up posture, where
    /// any corruption means the model (or the silicon) is wrong.
    FailFast,
    /// Count and report every detection but keep serving; scheduling
    /// quality may degrade (inversions, lost packets) but the scheduler
    /// never panics.
    #[default]
    DetectAndCount,
    /// [`DetectAndCount`](FaultPolicy::DetectAndCount) plus repair:
    /// scrubbed trie sections that fail their audit are rebuilt from the
    /// translation table by bulk re-insertion.
    ScrubAndRepair,
}

impl FaultPolicy {
    /// Stable kebab-case name (CLI syntax and report lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultPolicy::FailFast => "fail-fast",
            FaultPolicy::DetectAndCount => "detect-and-count",
            FaultPolicy::ScrubAndRepair => "scrub-and-repair",
        }
    }
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fail-fast" => Ok(FaultPolicy::FailFast),
            "detect-and-count" => Ok(FaultPolicy::DetectAndCount),
            "scrub-and-repair" => Ok(FaultPolicy::ScrubAndRepair),
            other => Err(format!(
                "unknown fault policy {other:?} (expected fail-fast, detect-and-count, or scrub-and-repair)"
            )),
        }
    }
}

/// A structure faults can be injected into.
///
/// The contract is minimal on purpose: a target is an array of
/// `fault_words` words, each with `fault_word_bits` usable bits, and an
/// injection XORs a mask into one word — modeling an SEU flipping the
/// stored cells directly, *without* updating any derived state (parity,
/// registers, counters). Whatever bookkeeping a structure must adjust to
/// stay panic-free (the trie's marker count, for instance) is the
/// implementation's business; anything it must *not* adjust (SRAM parity
/// bits) is the point of the exercise.
pub trait FaultTarget {
    /// Number of addressable words faults can land in.
    fn fault_words(&self) -> usize;

    /// Usable bit width of word `word` (flips land below this bit).
    fn fault_word_bits(&self, word: usize) -> u32;

    /// XORs `mask` into word `word`, returning the pre-fault contents.
    fn inject_fault(&mut self, word: usize, mask: u64) -> u64;
}

/// A fault could not attach because the backend has no addressable
/// state for the requested component.
///
/// Software sort backends (the reference heap, for instance) keep their
/// ordering in host data structures with no modeled SRAM words, so a
/// planned fault aimed at them is *rejected* — structurally, not
/// silently dropped — and the scheduler records the rejection so fault
/// campaigns against such backends reconcile explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultAttachError {
    /// Stable name of the backend that rejected the fault.
    pub backend: &'static str,
    /// The component the fault was aimed at.
    pub component: FaultComponent,
}

impl fmt::Display for FaultAttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backend `{}` has no addressable {} state to fault",
            self.backend, self.component
        )
    }
}

impl Error for FaultAttachError {}

/// Parsed `--inject-faults` specification: `COUNT@SEED[:COMPONENT[:BITS]]`.
///
/// `COMPONENT` is `trie`, `translation`, `tagstore`, `buffer`, or `any`
/// (the default — each fault picks a component); `BITS` is flips per
/// fault (default 1, at most [`MAX_FAULT_BITS`]).
///
/// # Example
///
/// ```
/// use faultsim::{FaultComponent, FaultSpec};
///
/// let spec: FaultSpec = "4@7:trie:2".parse().unwrap();
/// assert_eq!(spec.count, 4);
/// assert_eq!(spec.seed, 7);
/// assert_eq!(spec.component, Some(FaultComponent::Trie));
/// assert_eq!(spec.bits, 2);
/// assert_eq!(spec.to_string(), "4@7:trie:2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Number of faults to schedule.
    pub count: u32,
    /// PRNG seed the plan derives from.
    pub seed: u64,
    /// Component restriction; `None` means any.
    pub component: Option<FaultComponent>,
    /// Bit flips per fault.
    pub bits: u32,
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, rest) = match s.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (s, None),
        };
        let (count_s, seed_s) = head.split_once('@').ok_or_else(|| {
            format!("bad fault spec {s:?} (expected COUNT@SEED[:COMPONENT[:BITS]])")
        })?;
        let count: u32 = count_s
            .parse()
            .map_err(|_| format!("bad fault count {count_s:?} in spec {s:?}"))?;
        if count == 0 {
            return Err(format!("fault count must be positive in spec {s:?}"));
        }
        let seed: u64 = seed_s
            .parse()
            .map_err(|_| format!("bad fault seed {seed_s:?} in spec {s:?}"))?;
        let mut component = None;
        let mut bits = 1;
        if let Some(rest) = rest {
            let (comp_s, bits_s) = match rest.split_once(':') {
                Some((c, b)) => (c, Some(b)),
                None => (rest, None),
            };
            component = match comp_s {
                "any" => None,
                "trie" => Some(FaultComponent::Trie),
                "translation" => Some(FaultComponent::Translation),
                "tagstore" => Some(FaultComponent::TagStore),
                "buffer" => Some(FaultComponent::Buffer),
                other => {
                    return Err(format!(
                        "unknown fault component {other:?} in spec {s:?} (expected trie, translation, tagstore, buffer, or any)"
                    ))
                }
            };
            if let Some(bits_s) = bits_s {
                bits = bits_s
                    .parse()
                    .map_err(|_| format!("bad bit count {bits_s:?} in spec {s:?}"))?;
                if bits == 0 || bits > MAX_FAULT_BITS {
                    return Err(format!(
                        "bit count must be 1..={MAX_FAULT_BITS} in spec {s:?}"
                    ));
                }
            }
        }
        Ok(Self {
            count,
            seed,
            component,
            bits,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.count, self.seed)?;
        write!(f, ":{}", self.component.map_or("any", FaultComponent::name))?;
        write!(f, ":{}", self.bits)
    }
}

/// How the scrubber picks which trie sections to audit each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScrubOrder {
    /// Cycle through sections in index order, one budget's worth per
    /// round — uniform detection latency regardless of traffic shape.
    #[default]
    RoundRobin,
    /// Audit recently-written sections first (tracked by a per-section
    /// dirty bitmap), falling back to the round-robin cursor for any
    /// leftover budget. Under skewed traffic most upsets land in the hot
    /// sections, so this finds them sooner; cold sections still age into
    /// the fallback cursor, and the wrapping virtual clock rotates which
    /// sections are hot, bounding starvation.
    WritePriority,
}

impl ScrubOrder {
    /// Stable kebab-case name (CLI syntax and report lines).
    pub fn name(self) -> &'static str {
        match self {
            ScrubOrder::RoundRobin => "round-robin",
            ScrubOrder::WritePriority => "write-priority",
        }
    }
}

impl fmt::Display for ScrubOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ScrubOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "round-robin" => Ok(ScrubOrder::RoundRobin),
            "write-priority" => Ok(ScrubOrder::WritePriority),
            other => Err(format!(
                "unknown scrub order {other:?} (expected round-robin or write-priority)"
            )),
        }
    }
}

/// Everything a scheduler shard needs to run faulted, as plain values —
/// `Copy`, so it rides inside a scheduler config into worker threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// The fault plan specification.
    pub spec: FaultSpec,
    /// Response policy.
    pub policy: FaultPolicy,
    /// Operation horizon fault operations are scheduled over (enqueues +
    /// dequeues; faults past the run's actual length never materialize).
    pub horizon_ops: u64,
    /// Trie sections audited per dequeue round (0 disables scrubbing;
    /// at least the geometry's section count means a full audit every
    /// round).
    pub scrub_sections: u32,
    /// Which sections the per-round scrub budget is spent on.
    pub scrub_order: ScrubOrder,
}

impl FaultConfig {
    /// A config for `spec` under `policy` with a one-section-per-round
    /// round-robin scrub schedule.
    pub fn new(spec: FaultSpec, policy: FaultPolicy, horizon_ops: u64) -> Self {
        Self {
            spec,
            policy,
            horizon_ops,
            scrub_sections: 1,
            scrub_order: ScrubOrder::default(),
        }
    }

    /// The same config with the plan seed offset by `off` — how sharded
    /// frontends give every port an independent fault stream.
    pub fn with_seed_offset(mut self, off: u64) -> Self {
        self.spec.seed = self.spec.seed.wrapping_add(off);
        self
    }
}

/// One scheduled fault, before it meets its target.
///
/// Word and bit choices are raw draws, resolved against the target's
/// actual size at injection time ([`PlannedFault::resolve`]) so a plan
/// is valid for any target geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Operation index (enqueues + dequeues) the fault is due at.
    pub op: u64,
    /// The component it lands in.
    pub component: FaultComponent,
    word_pick: u64,
    bit_picks: Vec<u64>,
}

impl PlannedFault {
    /// Resolves the raw draws against a concrete target: the word index
    /// and the XOR mask. Returns `None` for an empty target.
    pub fn resolve(&self, target: &dyn FaultTarget) -> Option<(usize, u64)> {
        let words = target.fault_words();
        if words == 0 {
            return None;
        }
        let word = (self.word_pick % words as u64) as usize;
        let width = target.fault_word_bits(word);
        if width == 0 {
            return None;
        }
        let mut mask = 0u64;
        for pick in &self.bit_picks {
            mask |= 1u64 << (pick % u64::from(width));
        }
        Some((word, mask))
    }
}

/// A seeded schedule of faults over one run, in operation order.
///
/// # Example
///
/// ```
/// use faultsim::{FaultPlan, FaultSpec};
///
/// let spec: FaultSpec = "3@42:any:1".parse().unwrap();
/// let a = FaultPlan::generate(&spec, 1000);
/// let b = FaultPlan::generate(&spec, 1000);
/// assert_eq!(a.remaining(), 3);
/// // Same spec, same plan — determinism is the whole point.
/// let mut a = a;
/// let mut b = b;
/// while let Some(fa) = a.next_due(u64::MAX) {
///     assert_eq!(Some(fa), b.next_due(u64::MAX));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
    cursor: usize,
}

impl FaultPlan {
    /// Generates the plan for `spec` over `horizon_ops` operations.
    pub fn generate(spec: &FaultSpec, horizon_ops: u64) -> Self {
        let mut rng = Rng::seed_from_u64(spec.seed);
        let horizon = horizon_ops.max(1);
        let mut faults: Vec<PlannedFault> = (0..spec.count)
            .map(|_| {
                let op = rng.next_u64() % horizon;
                let component = spec.component.unwrap_or_else(|| {
                    FaultComponent::ALL[rng.below_u32(FaultComponent::ALL.len() as u32) as usize]
                });
                let word_pick = rng.next_u64();
                let bit_picks = (0..spec.bits).map(|_| rng.next_u64()).collect();
                PlannedFault {
                    op,
                    component,
                    word_pick,
                    bit_picks,
                }
            })
            .collect();
        faults.sort_by_key(|f| f.op);
        Self { faults, cursor: 0 }
    }

    /// Faults not yet handed out.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }

    /// Hands out the next fault whose due operation is at or before
    /// `op`, advancing the cursor. Call in a loop to drain a round.
    pub fn next_due(&mut self, op: u64) -> Option<PlannedFault> {
        let f = self.faults.get(self.cursor)?;
        if f.op <= op {
            self.cursor += 1;
            Some(f.clone())
        } else {
            None
        }
    }
}

/// How a fault was first noticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionKind {
    /// Per-word SRAM parity mismatch on read.
    Parity,
    /// The incremental scrubber's marker-vs-translation audit.
    Scrub,
    /// A structural invariant check on the service path (dangling link,
    /// missing translation entry, dead-end trie descent).
    Structural,
}

impl DetectionKind {
    /// Stable lowercase name (report lines).
    pub fn name(self) -> &'static str {
        match self {
            DetectionKind::Parity => "parity",
            DetectionKind::Scrub => "scrub",
            DetectionKind::Structural => "structural",
        }
    }
}

/// The full life of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Component the fault landed in.
    pub component: FaultComponent,
    /// Word index within the component's [`FaultTarget`] space.
    pub word: usize,
    /// XOR mask applied.
    pub mask: u64,
    /// Operation index it was injected at.
    pub injected_op: u64,
    /// Circuit cycle it was injected at.
    pub injected_cycle: u64,
    /// Cycle it was first detected, if ever.
    pub detected_cycle: Option<u64>,
    /// The mechanism that first detected it.
    pub detected_by: Option<DetectionKind>,
    /// Cycle a repair restored the damaged state, if ever.
    pub repaired_cycle: Option<u64>,
}

impl FaultRecord {
    /// One deterministic report line (no timestamps, no addresses beyond
    /// the model's own indices).
    pub fn to_line(&self) -> String {
        let detected = match (self.detected_by, self.detected_cycle) {
            (Some(kind), Some(cycle)) => format!("{}@{}", kind.name(), cycle),
            _ => "-".to_string(),
        };
        let repaired = match self.repaired_cycle {
            Some(cycle) => format!("@{cycle}"),
            None => "-".to_string(),
        };
        format!(
            "fault component={} word={} mask={:#x} injected_op={} injected_cycle={} detected={} repaired={}",
            self.component.name(),
            self.word,
            self.mask,
            self.injected_op,
            self.injected_cycle,
            detected,
            repaired,
        )
    }
}

/// The per-run book of injected faults and their outcomes.
///
/// The reconciliation identity the whole subsystem is gated on falls out
/// of this ledger by construction: every record is detected at most once
/// ([`claim`](FaultLedger::claim) marks it), so
/// `detected() + silent() == injected()` always.
#[derive(Debug, Clone, Default)]
pub struct FaultLedger {
    records: Vec<FaultRecord>,
}

impl FaultLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a freshly injected fault; returns its record index.
    pub fn push(&mut self, record: FaultRecord) -> usize {
        self.records.push(record);
        self.records.len() - 1
    }

    /// All records, in injection order.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of injected faults.
    pub fn injected(&self) -> u64 {
        self.records.len() as u64
    }

    /// Number of records detected so far.
    pub fn detected(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.detected_cycle.is_some())
            .count() as u64
    }

    /// Number of records repaired so far.
    pub fn repaired(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.repaired_cycle.is_some())
            .count() as u64
    }

    /// Number of records never detected — the silent corruptions.
    pub fn silent(&self) -> u64 {
        self.injected() - self.detected()
    }

    /// Marks the first matching undetected record as detected; `word =
    /// None` matches any word of the component (structural detections
    /// often know what broke but not where). Returns the claimed record's
    /// index, or `None` if the detection matches no outstanding fault
    /// (a re-detection, or damage outside the modeled plan).
    pub fn claim(
        &mut self,
        component: FaultComponent,
        word: Option<usize>,
        cycle: u64,
        kind: DetectionKind,
    ) -> Option<usize> {
        let idx = self.records.iter().position(|r| {
            r.component == component
                && r.detected_cycle.is_none()
                && word.is_none_or(|w| r.word == w)
        })?;
        self.records[idx].detected_cycle = Some(cycle);
        self.records[idx].detected_by = Some(kind);
        Some(idx)
    }

    /// Marks record `idx` as repaired at `cycle` (first repair wins).
    pub fn mark_repaired(&mut self, idx: usize, cycle: u64) {
        if let Some(r) = self.records.get_mut(idx) {
            if r.repaired_cycle.is_none() {
                r.repaired_cycle = Some(cycle);
            }
        }
    }

    /// Indices of records matching `pred` (repair attribution sweeps).
    pub fn find_all(&self, mut pred: impl FnMut(&FaultRecord) -> bool) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Fault-injection parse/config errors carried to CLI surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeTarget {
        words: Vec<u64>,
        width: u32,
    }

    impl FaultTarget for FakeTarget {
        fn fault_words(&self) -> usize {
            self.words.len()
        }
        fn fault_word_bits(&self, _word: usize) -> u32 {
            self.width
        }
        fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
            let old = self.words[word];
            self.words[word] ^= mask;
            old
        }
    }

    #[test]
    fn spec_parses_all_forms() {
        let s: FaultSpec = "5@9".parse().unwrap();
        assert_eq!((s.count, s.seed, s.component, s.bits), (5, 9, None, 1));
        let s: FaultSpec = "2@0:translation".parse().unwrap();
        assert_eq!(s.component, Some(FaultComponent::Translation));
        let s: FaultSpec = "1@3:tagstore:8".parse().unwrap();
        assert_eq!((s.component, s.bits), (Some(FaultComponent::TagStore), 8));
        let s: FaultSpec = "7@1:any:2".parse().unwrap();
        assert_eq!(s.component, None);
        let s: FaultSpec = "3@4:buffer:2".parse().unwrap();
        assert_eq!((s.component, s.bits), (Some(FaultComponent::Buffer), 2));
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "",
            "5",
            "@7",
            "x@7",
            "5@x",
            "0@7",
            "5@7:bogus",
            "5@7:trie:0",
            "5@7:trie:9",
            "5@7:trie:x",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn spec_display_round_trips() {
        for text in [
            "4@7:trie:1",
            "1@0:any:8",
            "9@123:tagstore:2",
            "2@5:buffer:1",
        ] {
            let spec: FaultSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn policy_parses_and_names() {
        for p in [
            FaultPolicy::FailFast,
            FaultPolicy::DetectAndCount,
            FaultPolicy::ScrubAndRepair,
        ] {
            assert_eq!(p.name().parse::<FaultPolicy>().unwrap(), p);
        }
        assert!("eventually-consistent".parse::<FaultPolicy>().is_err());
    }

    #[test]
    fn scrub_order_parses_and_names() {
        for o in [ScrubOrder::RoundRobin, ScrubOrder::WritePriority] {
            assert_eq!(o.name().parse::<ScrubOrder>().unwrap(), o);
        }
        assert_eq!(ScrubOrder::default(), ScrubOrder::RoundRobin);
        assert!("hottest-first".parse::<ScrubOrder>().is_err());
    }

    #[test]
    fn plan_is_deterministic_and_ordered() {
        let spec: FaultSpec = "16@99:any:3".parse().unwrap();
        let mut a = FaultPlan::generate(&spec, 500);
        let mut b = FaultPlan::generate(&spec, 500);
        let mut last_op = 0;
        while let Some(fa) = a.next_due(u64::MAX) {
            assert_eq!(Some(fa.clone()), b.next_due(u64::MAX));
            assert!(fa.op >= last_op, "plan not sorted by op");
            assert!(fa.op < 500);
            last_op = fa.op;
        }
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn next_due_respects_the_op_clock() {
        let spec: FaultSpec = "8@5".parse().unwrap();
        let mut plan = FaultPlan::generate(&spec, 100);
        let mut drained = 0;
        for op in 0..100 {
            while let Some(f) = plan.next_due(op) {
                assert!(f.op <= op);
                drained += 1;
            }
        }
        assert_eq!(drained, 8);
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn resolve_masks_stay_in_width() {
        let spec: FaultSpec = "32@11:trie:8".parse().unwrap();
        let mut plan = FaultPlan::generate(&spec, 64);
        let target = FakeTarget {
            words: vec![0; 17],
            width: 16,
        };
        while let Some(f) = plan.next_due(u64::MAX) {
            let (word, mask) = f.resolve(&target).unwrap();
            assert!(word < 17);
            assert!(mask != 0 && mask < (1 << 16), "mask {mask:#x}");
        }
    }

    #[test]
    fn resolve_on_empty_target_is_none() {
        let spec: FaultSpec = "1@2".parse().unwrap();
        let mut plan = FaultPlan::generate(&spec, 10);
        let target = FakeTarget {
            words: vec![],
            width: 16,
        };
        assert_eq!(plan.next_due(u64::MAX).unwrap().resolve(&target), None);
    }

    #[test]
    fn injection_xors_and_returns_old() {
        let mut t = FakeTarget {
            words: vec![0b1010, 0],
            width: 8,
        };
        assert_eq!(t.inject_fault(0, 0b0110), 0b1010);
        assert_eq!(t.words[0], 0b1100);
    }

    fn record(component: FaultComponent, word: usize) -> FaultRecord {
        FaultRecord {
            component,
            word,
            mask: 1,
            injected_op: 3,
            injected_cycle: 12,
            detected_cycle: None,
            detected_by: None,
            repaired_cycle: None,
        }
    }

    #[test]
    fn ledger_reconciles_by_construction() {
        let mut l = FaultLedger::new();
        l.push(record(FaultComponent::Trie, 5));
        l.push(record(FaultComponent::Trie, 5));
        l.push(record(FaultComponent::TagStore, 9));
        // Exact-word claim takes the first undetected match only.
        let a = l.claim(FaultComponent::Trie, Some(5), 40, DetectionKind::Scrub);
        assert_eq!(a, Some(0));
        let b = l.claim(FaultComponent::Trie, Some(5), 44, DetectionKind::Scrub);
        assert_eq!(b, Some(1));
        // Third claim on the same word finds nothing outstanding.
        assert_eq!(
            l.claim(FaultComponent::Trie, Some(5), 48, DetectionKind::Scrub),
            None
        );
        // Any-word claim picks up the tag-store record.
        assert_eq!(
            l.claim(FaultComponent::TagStore, None, 50, DetectionKind::Parity),
            Some(2)
        );
        assert_eq!(l.injected(), 3);
        assert_eq!(l.detected(), 3);
        assert_eq!(l.silent(), 0);
        assert_eq!(l.detected() + l.silent(), l.injected());
        l.mark_repaired(0, 60);
        l.mark_repaired(0, 99); // first repair wins
        assert_eq!(l.records()[0].repaired_cycle, Some(60));
        assert_eq!(l.repaired(), 1);
    }

    #[test]
    fn record_lines_are_deterministic() {
        let mut r = record(FaultComponent::Translation, 77);
        assert_eq!(
            r.to_line(),
            "fault component=translation word=77 mask=0x1 injected_op=3 injected_cycle=12 detected=- repaired=-"
        );
        r.detected_by = Some(DetectionKind::Parity);
        r.detected_cycle = Some(90);
        r.repaired_cycle = Some(91);
        assert_eq!(
            r.to_line(),
            "fault component=translation word=77 mask=0x1 injected_op=3 injected_cycle=12 detected=parity@90 repaired=@91"
        );
    }

    #[test]
    fn seed_offset_shifts_the_stream() {
        let spec: FaultSpec = "4@10:trie:1".parse().unwrap();
        let cfg = FaultConfig::new(spec, FaultPolicy::DetectAndCount, 100);
        let shifted = cfg.with_seed_offset(3);
        assert_eq!(shifted.spec.seed, 13);
        let mut a = FaultPlan::generate(&cfg.spec, 100);
        let mut b = FaultPlan::generate(&shifted.spec, 100);
        let fa = a.next_due(u64::MAX).unwrap();
        let fb = b.next_due(u64::MAX).unwrap();
        assert!(fa != fb, "offset seed must give a different plan");
    }
}
