//! **Experiment E19 — deep-pipelined tag sorter:** sustained modeled
//! throughput of the [`PipelinedSortBackend`], which registers every
//! trie level (plus the translation and tag-store stages) so a new
//! operation can enter the circuit each cycle instead of every four.
//!
//! Both workloads are pure functions of the cycle model — bit-stable on
//! any host — so the JSON gates exactly:
//!
//! * `ceil_cycles_per_op` — steady-state cycles/op on the hazard-free
//!   sweep (each round inserts one tag per top-level section in
//!   ascending order, then pops them back; every operation hops a
//!   section and an SRAM bank). **Gated in CI** as a ceiling against
//!   `ci/baseline_pipeline.json`: the deep pipeline must stay within a
//!   third of the ideal one operation per cycle.
//! * `pipelined_mpps` / `speedup_vs_sequential` — the derived line rate
//!   at the paper's 143.2 MHz clock and the ratio over the sequential
//!   circuit's fixed four-cycle slot (floors).
//! * `ceil_hazard_cycles_per_op`, `ceil_hazard_stall_rate` — the
//!   worst-case stream: every operation lands in the same trie section,
//!   so each one read-after-write hazards against the one in flight and
//!   the hazard unit inserts a bubble (ceilings; deeper stalling fails).
//! * `pipeline_depth`, `stage_register_bits` — the structural cost the
//!   netlist model adds for the stage registers (floors).
//!
//! With `--json [PATH]` the metrics are written as a flat JSON object
//! (default `BENCH_pipeline.json`) for `check_regression`; `--quick`
//! shortens the sweeps (steady-state rates, so the numbers barely move).

use bench::{eng, json_object, print_table};
use tagsort::{
    BackendSpec, CleanupPolicy, Geometry, MemoryKind, PacketRef, PipelinedSortBackend, SortBackend,
    Tag, PAPER_CLOCK_HZ,
};

fn build(memory: MemoryKind) -> PipelinedSortBackend {
    PipelinedSortBackend::build(&BackendSpec {
        geometry: Geometry::paper(),
        capacity: 1024,
        cleanup: CleanupPolicy::Eager,
        memory,
    })
}

/// Hazard-free steady state: each round inserts one tag per top-level
/// section in ascending order, then pops them all back out. Both halves
/// hop a section (and its SRAM bank) every operation — the stream shape
/// a line-rate scheduler arranges for — so nothing stalls and the
/// sustained rate converges on one operation per cycle.
fn sweep(memory: MemoryKind, ops: usize) -> PipelinedSortBackend {
    let mut backend = build(memory);
    let g = Geometry::paper();
    let span = g.tag_space() / u64::from(g.branching());
    let mut issued = 0usize;
    let mut round = 0u64;
    while issued < ops {
        for s in 0..g.branching() {
            let tag = Tag((u64::from(s) * span + (round % span)) as u32);
            backend.insert(tag, PacketRef(s)).expect("capacity");
        }
        for _ in 0..g.branching() {
            backend.pop_min().expect("backlogged");
        }
        issued += 2 * g.branching() as usize;
        round += 1;
    }
    backend
}

/// Adversarial steady state: every operation lands in trie section 0,
/// so each insert read-after-write hazards against the pop in flight
/// (and vice versa) and the hazard unit stalls the issue slot — the
/// worst case the forwarding path cannot hide.
fn hazard_burst(memory: MemoryKind, ops: usize) -> PipelinedSortBackend {
    let mut backend = build(memory);
    backend.insert(Tag(0), PacketRef(0)).expect("capacity");
    for i in 0..ops as u64 {
        backend
            .insert(Tag((i % 256) as u32), PacketRef(1))
            .expect("capacity");
        backend.pop_min().expect("backlogged");
    }
    backend
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_pipeline.json".into())
    });
    let ops = if quick { 5_000usize } else { 50_000 };

    let single = sweep(MemoryKind::SinglePort, ops);
    let qdr = sweep(MemoryKind::QdrLike, ops);
    let hazard = hazard_burst(MemoryKind::SinglePort, ops);

    let cpo = single.pipeline_stats().cycles_per_op();
    let cpo_qdr = qdr.pipeline_stats().cycles_per_op();
    let hz = hazard.pipeline_stats();
    let hazard_cpo = hz.cycles_per_op();
    let stall_rate = hz.stalls as f64 / hz.issued as f64;
    let pps = PAPER_CLOCK_HZ / cpo;

    let mut rows = Vec::new();
    for (label, backend) in [
        ("section sweep, single-port SRAM", &single),
        ("section sweep, QDR-like SRAM", &qdr),
        ("same-section burst (worst case)", &hazard),
    ] {
        let s = backend.pipeline_stats();
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", s.cycles_per_op()),
            format!("{}pps", eng(PAPER_CLOCK_HZ / s.cycles_per_op())),
            format!("{}", s.stalls),
            format!("{}", s.forwards),
            format!("{}", s.port_conflicts),
        ]);
    }
    print_table(
        "E19 — deep-pipelined sorter, modeled cycles per operation",
        &[
            "workload",
            "cycles/op",
            "@143.2 MHz",
            "stalls",
            "forwards",
            "bank conflicts",
        ],
        &rows,
    );
    println!(
        "\nThe sequential circuit charges a fixed {} cycles per operation;\n\
         stage registers between the trie levels bring the hazard-free\n\
         sustained cost to {cpo:.3} cycles/op ({}pps at the paper's clock,\n\
         {:.2}x the sequential rate), at a cost of {} stage-register bits\n\
         across {} pipeline stages. Only same-section back-to-back traffic\n\
         pays: the worst-case single-section stream stalls every slot and\n\
         runs at {hazard_cpo:.2} cycles/op.",
        4.0,
        eng(pps),
        4.0 / cpo,
        single.stage_register_bits(),
        single.pipeline_depth(),
    );

    let metrics: Vec<(String, f64)> = vec![
        ("ceil_cycles_per_op".into(), cpo),
        ("ceil_cycles_per_op_qdr".into(), cpo_qdr),
        ("pipelined_mpps".into(), pps / 1e6),
        ("speedup_vs_sequential".into(), 4.0 / cpo),
        ("ceil_hazard_cycles_per_op".into(), hazard_cpo),
        ("ceil_hazard_stall_rate".into(), stall_rate),
        ("pipeline_depth".into(), single.pipeline_depth() as f64),
        (
            "stage_register_bits".into(),
            single.stage_register_bits() as f64,
        ),
    ];
    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
