//! **Experiment E4 — Fig. 6:** the distribution of new tag values moves
//! as time increases.
//!
//! Drives the full hardware scheduler with two traffic profiles — the
//! paper's "streaming VoIP" (left-weighted distribution) and a "diverse
//! mix" (bell curve) — and prints histograms of newly allocated tag
//! values per time window, plus the section-recycling activity as the
//! window advances around the circular tag space.

use bench::print_table;
use scheduler::{TagQuantizer, WrapPolicy};
use tagsort::Geometry;
use traffic::{generate, profiles, FlowSpec, Packet};

/// Quantizes a whole trace through a WFQ clock and collects, per time
/// window, the histogram of allocated tag values (16 section-sized bins)
/// and the recycled sections.
fn run_profile(
    name: &str,
    flows: &[FlowSpec],
    trace: &[Packet],
    rate: f64,
    scale: f64,
) -> (Vec<Vec<u32>>, usize, u64) {
    let weights: Vec<f64> = {
        let mut w = vec![0.0; flows.len()];
        for f in flows {
            w[f.id.0 as usize] = f.weight;
        }
        w
    };
    let mut clock = fairq::GpsVirtualClock::new(&weights, rate);
    let mut quant = TagQuantizer::with_policy(Geometry::paper(), scale, WrapPolicy::Wrap);
    let horizon = trace.last().map(|p| p.arrival.seconds()).unwrap_or(0.0);
    let windows = 6usize;
    let mut hist = vec![vec![0u32; 16]; windows];
    let mut recycles = 0usize;
    let mut inversions_possible = 0u64;
    // Emulate a nearly-drained sorter: the minimum outstanding tick
    // trails the newest by a small backlog.
    let mut recent: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    for pkt in trace {
        let (_, finish) = clock.on_arrival(pkt.flow, pkt.size_bits(), pkt.arrival);
        let min_tick = recent.front().copied();
        let out = quant.quantize(finish, min_tick);
        recycles += out.recycle.len();
        recent.push_back(out.tick);
        if recent.len() > 32 {
            recent.pop_front();
        }
        let w =
            ((pkt.arrival.seconds() / horizon) * windows as f64).min(windows as f64 - 1.0) as usize;
        hist[w][(out.tag.value() / 256) as usize] += 1;
        if out.tag.value() < 256 && out.tick >= 4096 {
            inversions_possible += 1;
        }
    }
    println!("\nprofile: {name}");
    (hist, recycles, inversions_possible)
}

fn render(hist: &[Vec<u32>]) {
    let mut rows = Vec::new();
    for (w, bins) in hist.iter().enumerate() {
        let peak = *bins.iter().max().unwrap_or(&1) as f64;
        let mut row = vec![format!("window {w}")];
        for &b in bins {
            let level = if b == 0 {
                ' '
            } else {
                let frac = b as f64 / peak.max(1.0);
                match (frac * 4.0).ceil() as u32 {
                    0 | 1 => '.',
                    2 => ':',
                    3 => '+',
                    _ => '#',
                }
            };
            row.push(level.to_string());
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("time".to_string())
        .chain((0..16).map(|s| format!("s{s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "tag-value distribution per time window (columns = tree sections)",
        &header_refs,
        &rows,
    );
}

fn main() {
    let rate = 20e6;

    // VoIP: small fixed packets, steady rates — a narrow, left-leaning
    // tag distribution that drifts rightward.
    let voip = profiles::voip(24);
    let trace = generate(&voip, 0.5, 11);
    let (hist, recycles, inv) = run_profile(
        "VoIP (Fig. 6 'weighted to the left')",
        &voip,
        &trace,
        rate,
        40.0,
    );
    render(&hist);
    println!("sections recycled: {recycles}; wrap-boundary allocations: {inv}");

    // Diverse mix: IMIX sizes, varied weights — the 'classic bell curve'.
    let mix = profiles::diverse_mix(24, 400_000.0);
    let trace = generate(&mix, 0.5, 13);
    let (hist, recycles, inv) = run_profile(
        "diverse mix (Fig. 6 'classic bell curve')",
        &mix,
        &trace,
        rate,
        280.0,
    );
    render(&hist);
    println!("sections recycled: {recycles}; wrap-boundary allocations: {inv}");

    println!(
        "\nReproduces Fig. 6: the occupied band of tag values shifts forward as\n\
         time progresses; sections falling behind the window are recycled and\n\
         reused when the circular tag space wraps."
    );

    // --- Wrap-policy ablation: what the paper's linear sorter does at the
    // lap boundary, measured end to end through the hardware scheduler.
    use scheduler::{HwScheduler, SchedulerConfig};
    use traffic::{FlowId, FlowSpec, Packet, Time};
    let mut rows = Vec::new();
    for (label, policy) in [
        ("Wrap (paper-literal)", WrapPolicy::Wrap),
        ("Saturate (order-preserving)", WrapPolicy::Saturate),
    ] {
        let flows = [FlowSpec::new(FlowId(0), 1.0, 1e6)];
        let mut s = HwScheduler::new(
            &flows,
            1e6,
            SchedulerConfig {
                tick_scale: 10.0,
                wrap_policy: policy,
                ..SchedulerConfig::default()
            },
        );
        let mut t = 0.0;
        let mut seq = 0u64;
        let enq = |s: &mut HwScheduler, t: &mut f64, seq: &mut u64| {
            *t += 1e-3;
            s.enqueue(Packet {
                flow: FlowId(0),
                size_bytes: 125,
                arrival: Time(*t),
                seq: *seq,
            })
            .expect("capacity");
            *seq += 1;
        };
        for _ in 0..120 {
            // A warm backlog of 8 straddles each lap boundary.
            for _ in 0..8 {
                enq(&mut s, &mut t, &mut seq);
            }
            for _ in 0..25 {
                enq(&mut s, &mut t, &mut seq);
                s.dequeue().expect("backlogged");
            }
            while s.dequeue().is_some() {}
        }
        let stats = s.stats();
        rows.push(vec![
            label.to_string(),
            stats.dequeued.to_string(),
            stats.inversions.to_string(),
            stats.clamped.to_string(),
        ]);
    }
    print_table(
        "wrap-policy ablation — ~4000 packets across ~90 laps, backlog 8",
        &["policy", "served", "order inversions", "tags clamped"],
        &rows,
    );
    println!(
        "The paper's circular reuse (Wrap) pays for full range utilization with\n\
         boundary inversions — substantial here because a 12-bit space at 100\n\
         ticks/packet laps every ~41 packets. Wider geometries shrink the\n\
         boundary exposure proportionally; Saturate eliminates it outright by\n\
         clamping at the lap top. EXPERIMENTS.md 'gaps found' has the full\n\
         discussion."
    );
}
