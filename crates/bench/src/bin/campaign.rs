//! **Experiment E18 — campaign grid sweep:** run a [`campaign`] spec and
//! emit its deterministic report plus a flat JSON object for
//! `check_regression`.
//!
//! ```sh
//! cargo run --release --bin campaign             # the builtin smoke grid
//! cargo run --release --bin campaign -- soak     # the 2^20-flow soak cell
//! cargo run --release --bin campaign -- my.spec --json BENCH_campaign.json
//! ```
//!
//! The text report is byte-identical across runs and hosts (CI diffs two
//! invocations verbatim); the JSON carries per-cell served/dropped
//! counts, `ceil_`-prefixed fairness/sojourn/resident-memory tail
//! ceilings, and the paged-vs-eager `agree` bits.

use bench::json_object;
use campaign::{run, CampaignSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_campaign.json".into())
    });
    let name = args
        .iter()
        .position(|a| !a.starts_with("--"))
        .filter(|&i| i == 0 || args[i - 1] != "--json")
        .map_or("smoke", |i| args[i].as_str());

    let spec = match CampaignSpec::resolve(name) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let report = run(&spec);
    print!("{}", report.text);

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&report.metrics)).expect("write json");
        println!("wrote {path}");
    }
}
