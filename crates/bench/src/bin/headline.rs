//! **Experiment E9 — §IV headline claims:** 40 Gb/s, 35.8 Mpps, and
//! scalability in tags, sessions, and packets.
//!
//! Sweeps the end-to-end hardware scheduler across tree geometries and
//! session counts, reporting sustained cycles/packet (always 4 — the
//! scalability claim is that the slot cost is *independent* of
//! occupancy), derived line rates, and the capacity arithmetic behind
//! "30 million packets" and "8 million sessions".
//!
//! Flags: `--quick` shortens each sweep point (the sustained cost is
//! steady-state, so the short run measures the same number); `--json
//! [PATH]` writes the derived throughputs as a flat JSON object (default
//! `BENCH_headline.json`) for the CI regression gate.

use bench::{eng, json_object, print_table};
use scheduler::{HwScheduler, SchedulerConfig};
use tagsort::StoreLayout;
use tagsort::{
    BackendSpec, CleanupPolicy, Geometry, PacketRef, PipelinedSortBackend, SortBackend, Tag,
    PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES,
};
use traffic::{FlowId, FlowSpec, Packet, Time};

fn sustained_cycles_per_packet(
    flows: usize,
    packets: usize,
    geometry: Geometry,
    memory: tagsort::MemoryKind,
) -> f64 {
    let specs: Vec<FlowSpec> = (0..flows)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect();
    let mut s = HwScheduler::new(
        &specs,
        40e9,
        SchedulerConfig {
            geometry,
            capacity: packets.max(1024),
            tick_scale: 2000.0,
            memory,
            ..SchedulerConfig::default()
        },
    );
    let mut t = 0.0;
    let mut seq = 0u64;
    // Warm a backlog, then run enqueue+dequeue pairs at steady state.
    for _ in 0..64 {
        t += 28e-9;
        s.enqueue(Packet {
            flow: FlowId((seq % flows as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        })
        .expect("capacity");
        seq += 1;
    }
    for _ in 0..packets {
        t += 28e-9; // 140 B at 40 Gb/s
        s.enqueue(Packet {
            flow: FlowId((seq % flows as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        })
        .expect("capacity");
        seq += 1;
        s.dequeue().expect("backlogged");
    }
    s.stats().circuit.cycles_per_op()
}

/// Deep-pipeline cycles/op at the same geometry and memory: a
/// steady-state insert+pop stream driven straight into the
/// [`PipelinedSortBackend`], whose timing model overlaps the trie
/// levels instead of serializing them. Each round inserts one tag per
/// top-level section in ascending order, then pops them all back out;
/// both halves hop a section (and an SRAM bank) every operation, the
/// hazard-free shape a line-rate scheduler arranges for, so the
/// sustained rate converges on one operation per cycle.
fn pipelined_cycles_per_op(geometry: Geometry, memory: tagsort::MemoryKind, ops: usize) -> f64 {
    let mut backend = PipelinedSortBackend::build(&BackendSpec {
        geometry,
        capacity: 1024,
        cleanup: CleanupPolicy::Eager,
        memory,
    });
    let branching = geometry.branching();
    let span = geometry.tag_space() / u64::from(branching);
    let mut issued = 0usize;
    let mut round = 0u64;
    while issued < ops {
        for s in 0..branching {
            let tag = Tag((u64::from(s) * span + (round % span)) as u32);
            backend.insert(tag, PacketRef(s)).expect("capacity");
        }
        for _ in 0..branching {
            backend.pop_min().expect("backlogged");
        }
        issued += 2 * branching as usize;
        round += 1;
    }
    backend.pipeline_stats().cycles_per_op()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_headline.json".into())
    });
    // The slot cost is steady-state: past the warmup, every extra packet
    // measures the same four cycles, so the quick sweep is exact too.
    let sweep_packets = if quick { 500usize } else { 5_000 };

    // --- Throughput across occupancy and geometry -----------------------
    use tagsort::MemoryKind::{QdrLike, SinglePort};
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (flows, geometry, memory, slug, label) in [
        (
            4usize,
            Geometry::paper(),
            SinglePort,
            "tree12_4s",
            "12-bit tree, 4 sessions",
        ),
        (
            64,
            Geometry::paper(),
            SinglePort,
            "tree12_64s",
            "12-bit tree, 64 sessions",
        ),
        (
            1024,
            Geometry::paper(),
            SinglePort,
            "tree12_1ks",
            "12-bit tree, 1k sessions",
        ),
        (
            64,
            Geometry::paper_wide(),
            SinglePort,
            "tree15_64s",
            "15-bit tree (32-bit nodes)",
        ),
        (
            64,
            Geometry::new(4, 5),
            SinglePort,
            "tree20_64s",
            "20-bit tree, 5 levels",
        ),
        (
            100_000,
            Geometry::new(4, 5),
            SinglePort,
            "tree20_100ks",
            "20-bit tree, 100k sessions",
        ),
        (
            64,
            Geometry::paper(),
            QdrLike,
            "tree12_qdr_64s",
            "12-bit tree, QDR storage",
        ),
    ] {
        let cpo = sustained_cycles_per_packet(flows, sweep_packets, geometry, memory);
        let pps = PAPER_CLOCK_HZ / cpo;
        let pipe_cpo = pipelined_cycles_per_op(geometry, memory, sweep_packets);
        let pipe_pps = PAPER_CLOCK_HZ / pipe_cpo;
        rows.push(vec![
            label.to_string(),
            format!("{cpo:.2}"),
            format!("{}pps", eng(pps)),
            format!("{}b/s", eng(pps * PAPER_MEAN_PACKET_BYTES * 8.0)),
            format!("{pipe_cpo:.2} c/op, {}pps", eng(pipe_pps)),
        ]);
        metrics.push((format!("mpps_{slug}"), pps / 1e6));
        metrics.push((format!("mpps_{slug}_pipelined"), pipe_pps / 1e6));
    }
    print_table(
        "§IV — sustained cost per packet is occupancy- and geometry-independent",
        &[
            "configuration",
            "cycles/packet",
            "@143.2 MHz",
            "line rate (140 B)",
            "pipelined",
        ],
        &rows,
    );

    // --- Capacity arithmetic --------------------------------------------
    let layout = StoreLayout::for_geometry(Geometry::paper(), 30_000_000);
    let rows = vec![
        vec![
            "tag storage for 30 M packets".into(),
            format!(
                "{}-bit links x 30 M = {}bit external SRAM",
                layout.word_bits(),
                eng(30_000_000.0 * f64::from(layout.word_bits()))
            ),
        ],
        vec![
            "addressable sessions (23-bit session field)".into(),
            format!("{}", eng(8_388_608.0)),
        ],
        vec![
            "tag space (12-bit circuit)".into(),
            "4096 values, 16 recyclable sections".into(),
        ],
        vec![
            "industry comparables (vendor datasheets)".into(),
            "5-10 Gb/s => ~4x advantage at 40 Gb/s".into(),
        ],
    ];
    print_table(
        "§IV — scalability arithmetic",
        &["claim", "reproduction"],
        &rows,
    );

    println!(
        "\nHeadline reproduced: the fixed four-cycle slot holds at every tested\n\
         occupancy and geometry, so throughput is set by the clock alone —\n\
         143.2 MHz / 4 = 35.8 Mpps = 40 Gb/s at 140-byte average packets."
    );

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
