//! **Experiment E7 — Table II:** post-layout synthesis results,
//! substituted.
//!
//! The original Table II reports UMC 130-nm post-layout area, power and
//! frequency — unreproducible without the authors' flow. What *is*
//! architectural, and therefore reproduced here, is everything derived
//! from structure:
//!
//! * the memory budgets of eqs. (2)–(3): 272 bits of register tree,
//!   4 kbit of level-3 SRAM, a 4096-entry translation table (and the
//!   32-k variant the paper prices);
//! * the fixed 4-cycle operation measured on the cycle-accurate model;
//! * the throughput chain: 143.2 MHz / 4 cycles ⇒ 35.8 Mpps ⇒ 40 Gb/s at
//!   the paper's conservative 140-byte average packet;
//! * gate-count proxies for the logic (the matcher instances).
//!
//! Substitution is documented in DESIGN.md §2 and EXPERIMENTS.md.

use bench::{eng, print_table, tag_workload};
use matcher::{MatcherCircuit, MatcherKind};
use tagsort::{Geometry, SortRetrieveCircuit, PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES};

fn main() {
    let g = Geometry::paper();

    // Measure the fixed cycle cost on a real workload.
    let mut c = SortRetrieveCircuit::new(g, 65536);
    for &(t, p) in &tag_workload(20_000, 12, 3) {
        c.insert(t, p).expect("capacity");
    }
    for _ in 0..10_000 {
        c.pop_min().expect("non-empty");
    }
    let stats = c.stats();

    let matcher16 = MatcherCircuit::build(MatcherKind::SelectLookAhead, 16);
    let rows = vec![
        vec![
            "tree memory, levels 1-2 (registers)".into(),
            format!("{} bits", g.tree_bits_at_level(0) + g.tree_bits_at_level(1)),
            "272 bits".into(),
        ],
        vec![
            "tree memory, level 3 (SRAM)".into(),
            format!("{} bits", g.tree_bits_at_level(2)),
            "4 kbit".into(),
        ],
        vec![
            "translation table entries".into(),
            g.translation_entries().to_string(),
            "4096 (8 memory blocks)".into(),
        ],
        vec![
            "translation table, 15-bit variant".into(),
            Geometry::paper_wide().translation_entries().to_string(),
            "32k entries".into(),
        ],
        vec![
            "matching circuits (3 levels)".into(),
            format!(
                "3 x {} gates, depth {}",
                matcher16.area(),
                matcher16.delay()
            ),
            "select & look-ahead, 16-bit".into(),
        ],
        vec![
            "cycles per tag (measured)".into(),
            format!("{:.2}", stats.cycles_per_op()),
            "4".into(),
        ],
        vec![
            "throughput at 143.2 MHz".into(),
            format!("{}pps", eng(stats.packets_per_second(PAPER_CLOCK_HZ))),
            "35.8 Mpps".into(),
        ],
        vec![
            "line rate at 140-byte packets".into(),
            format!(
                "{}b/s",
                eng(stats.line_rate_bps(PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES))
            ),
            "40 Gb/s".into(),
        ],
        vec![
            "area / power".into(),
            "not modelled (process-bound)".into(),
            "see paper Table II".into(),
        ],
        {
            // The deep-pipelined variant: stage registers between the
            // trie levels (plus translation and tag-store stages) buy
            // ~1 op/cycle for a few hundred extra flip-flop bits.
            use tagsort::PipelinedSortBackend;
            let p = PipelinedSortBackend::new(g, 4096);
            vec![
                "pipeline stage registers (deep variant)".into(),
                format!(
                    "{} bits across {} stages",
                    p.stage_register_bits(),
                    p.pipeline_depth()
                ),
                "not in paper (extension)".into(),
            ]
        },
        {
            // The §III-C "QDRII ... under development" variant: read and
            // write ports overlap the schedule into a 2-cycle slot.
            use tagsort::{CleanupPolicy, MemoryKind};
            let mut q = SortRetrieveCircuit::with_policy_and_memory(
                g,
                4096,
                CleanupPolicy::Eager,
                MemoryKind::QdrLike,
            );
            for &(t, p) in tag_workload(2000, 12, 4).iter() {
                q.insert(t, p).expect("capacity");
            }
            let qs = q.stats();
            vec![
                "QDR tag storage (projected)".into(),
                format!(
                    "{:.0} cycles/tag => {}pps = {}b/s",
                    qs.cycles_per_op(),
                    eng(qs.packets_per_second(PAPER_CLOCK_HZ)),
                    eng(qs.line_rate_bps(PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES))
                ),
                "\"beyond 40 Gb/s\" (§V)".into(),
            ]
        },
    ];
    print_table(
        "Table II — architectural results (measured vs paper)",
        &["quantity", "this reproduction", "paper"],
        &rows,
    );

    // Sanity gates for CI-style use.
    assert_eq!(stats.cycles_per_op(), 4.0);
    let mpps = stats.packets_per_second(PAPER_CLOCK_HZ) / 1e6;
    assert!((mpps - 35.8).abs() < 0.1);
    println!("\nAll architectural quantities match the paper's Table II derivation.");
}
