//! **Experiment E20 — dynamic shard rebalancing:** what live flow
//! migration buys over static flow-affinity hashing on a Zipf-skewed
//! multi-port frontend, and what it costs.
//!
//! The workload is the adversary the ROADMAP carried since PR 1: a
//! Zipf-1.2 popularity law concentrates a quarter of all traffic on one
//! flow, static hashing pins that flow (plus whatever else shares its
//! hash bucket) to one port, and that port's backlog dominates the
//! run's completion time while its neighbors idle. The dynamic runs arm
//! the [`scheduler::Rebalancer`] and execute one round every 1024
//! arrivals.
//!
//! Every metric is a pure function of the seeded workload — bit-stable
//! on any host — so the JSON gates exactly:
//!
//! * `rebalance_makespan_gain` — static completion time over dynamic
//!   (floor; the headline: dynamic must finish the skewed workload
//!   meaningfully earlier).
//! * `rebalance_balance_gain` / `ceil_rebalance_balance_dynamic` —
//!   max/mean per-port admissions, static over dynamic (floor) and the
//!   dynamic run's own figure (ceiling: placement must stay near even).
//! * `ceil_rebalance_migrations` — the migration-cost ceiling: the
//!   rebalancer must not thrash; each migration stalls both shards for
//!   the flow's backlog length.
//! * `rebalance_seq_par_agree` — 1.0 iff the sequential and
//!   thread-per-shard frontends, driven identically, produce the same
//!   departure hash and migration count (the live-migration
//!   determinism bit).
//! * `rebalance_ckpt_deterministic` — 1.0 iff checkpointing the same
//!   logical state twice, and from an identically-driven twin, is
//!   byte-identical (the checkpoint byte-diff gate).
//!
//! With `--json [PATH]` the metrics are written as a flat JSON object
//! (default `BENCH_rebalance.json`) for `check_regression`; `--quick`
//! shrinks the packet count (ratios barely move).

use bench::{json_object, print_table};
use fairq::WfqRank;
use scheduler::{
    HwScheduler, ParallelShardedScheduler, Placement, RebalancerConfig, SchedulerConfig,
    ShardStats, ShardedScheduler, WrapPolicy,
};
use tagsort::SortRetrieveCircuit;
use traffic::{FlowId, FlowSpec, Packet, ScaleConfig, ScaleWorkload};

const PORTS: usize = 8;
const FLOWS: u32 = 64;
const ZIPF: f64 = 1.2;
const RATE_BPS: f64 = 1e9;
const LOAD: f64 = 0.97;
const SEED: u64 = 20;
const REBALANCE_EVERY: u64 = 1024;

/// The two sharded frontends behind one drive loop, so the sequential
/// and threaded runs are *provably* driven identically.
trait Frontend {
    fn enqueue_ok(&mut self, pkt: Packet) -> bool;
    fn dequeue_port(&mut self, port: usize) -> Option<Packet>;
    fn rebalance_round(&mut self);
    fn frontend_stats(&mut self) -> ShardStats;
    fn migrations(&self) -> u64;
}

impl Frontend for ShardedScheduler<SortRetrieveCircuit, WfqRank> {
    fn enqueue_ok(&mut self, pkt: Packet) -> bool {
        self.enqueue(pkt).is_ok()
    }
    fn dequeue_port(&mut self, port: usize) -> Option<Packet> {
        ShardedScheduler::dequeue_port(self, port)
    }
    fn rebalance_round(&mut self) {
        self.maybe_rebalance();
    }
    fn frontend_stats(&mut self) -> ShardStats {
        self.stats()
    }
    fn migrations(&self) -> u64 {
        ShardedScheduler::migrations(self)
    }
}

impl Frontend for ParallelShardedScheduler<SortRetrieveCircuit, WfqRank> {
    fn enqueue_ok(&mut self, pkt: Packet) -> bool {
        self.enqueue(pkt).is_ok()
    }
    fn dequeue_port(&mut self, port: usize) -> Option<Packet> {
        ParallelShardedScheduler::dequeue_port(self, port)
    }
    fn rebalance_round(&mut self) {
        self.maybe_rebalance();
    }
    fn frontend_stats(&mut self) -> ShardStats {
        self.stats()
    }
    fn migrations(&self) -> u64 {
        ParallelShardedScheduler::migrations(self)
    }
}

fn workload(packets: u64) -> ScaleWorkload {
    ScaleWorkload::new(ScaleConfig {
        flows: FLOWS,
        packets,
        zipf_exponent: ZIPF,
        rate_bps: RATE_BPS,
        min_bytes: 64,
        max_bytes: 1500,
        churn: None,
        seed: SEED,
    })
}

fn flow_table() -> Vec<FlowSpec> {
    (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i), 1.0, RATE_BPS / f64::from(FLOWS)))
        .collect()
}

fn config(port_rate: f64) -> SchedulerConfig {
    SchedulerConfig {
        capacity: 1 << 17,
        tick_scale: fairq::RankPolicy::tick_scale(&WfqRank::default(), port_rate),
        wrap_policy: WrapPolicy::Saturate,
        ..SchedulerConfig::default()
    }
}

/// One run's outputs: per-port fluid-link completion time, admission
/// balance, a departure hash, and the migration bill.
struct RunResult {
    makespan_s: f64,
    balance: f64,
    served: u64,
    dropped: u64,
    migrations: u64,
    hash: u64,
}

/// Drives `fe` through the seeded workload: every port is an
/// independent egress link at `port_rate`; arrivals are enqueued in
/// trace order; dynamic runs get one rebalance round every
/// [`REBALANCE_EVERY`] arrivals. The departure hash folds
/// `(port, flow, seq)` in service order — the sequential/parallel
/// agreement witness.
fn drive<F: Frontend>(fe: &mut F, packets: u64, port_rate: f64, rebalance: bool) -> RunResult {
    let mut free_at = [0.0f64; PORTS];
    let mut served = 0u64;
    let mut dropped = 0u64;
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut fold = |port: usize, p: &Packet| {
        for word in [port as u64, u64::from(p.flow.0), p.seq] {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
    };
    let mut arrivals = 0u64;
    for pkt in workload(packets) {
        let now = pkt.arrival.0;
        for (port, free) in free_at.iter_mut().enumerate() {
            while *free <= now {
                let Some(p) = fe.dequeue_port(port) else {
                    break;
                };
                let start = free.max(p.arrival.0);
                *free = start + f64::from(p.size_bytes) * 8.0 / port_rate;
                served += 1;
                fold(port, &p);
            }
        }
        if fe.enqueue_ok(pkt) {
            arrivals += 1;
            if rebalance && arrivals.is_multiple_of(REBALANCE_EVERY) {
                fe.rebalance_round();
            }
        } else {
            dropped += 1;
        }
    }
    for (port, free) in free_at.iter_mut().enumerate() {
        while let Some(p) = fe.dequeue_port(port) {
            let start = free.max(p.arrival.0);
            *free = start + f64::from(p.size_bytes) * 8.0 / port_rate;
            served += 1;
            fold(port, &p);
        }
    }
    let makespan_s = free_at.iter().copied().fold(0.0, f64::max);
    let stats = fe.frontend_stats();
    RunResult {
        makespan_s,
        balance: stats.shard_balance(),
        served,
        dropped,
        migrations: fe.migrations(),
        hash,
    }
}

fn sequential(
    placement: Placement,
    port_rate: f64,
) -> ShardedScheduler<SortRetrieveCircuit, WfqRank> {
    let fe = ShardedScheduler::with_policy_port_rates_placement(
        &flow_table(),
        &[port_rate; PORTS],
        config(port_rate),
        &WfqRank::default(),
        placement,
    );
    match placement {
        Placement::Dynamic => fe.with_rebalancer(RebalancerConfig::default()),
        Placement::Hash => fe,
    }
}

fn parallel(port_rate: f64) -> ParallelShardedScheduler<SortRetrieveCircuit, WfqRank> {
    ParallelShardedScheduler::with_policy_placement(
        &flow_table(),
        &[port_rate; PORTS],
        config(port_rate),
        &WfqRank::default(),
        Placement::Dynamic,
    )
    .with_rebalancer(RebalancerConfig::default())
}

/// The checkpoint byte-diff gate: the same logical state must
/// checkpoint to identical bytes — twice from one scheduler (the read
/// is nondestructive) and once from an identically-driven twin.
fn checkpoint_deterministic(packets: u64) -> bool {
    let build = || {
        let mut s = HwScheduler::<SortRetrieveCircuit, WfqRank>::with_backend_and_policy(
            &flow_table(),
            RATE_BPS,
            config(RATE_BPS),
            &WfqRank::default(),
        );
        for pkt in workload(packets.min(2_000)) {
            s.enqueue(pkt).expect("capacity covers the prefix");
        }
        s
    };
    let mut a = build();
    let first = a.checkpoint().to_bytes();
    let second = a.checkpoint().to_bytes();
    let twin = build().checkpoint().to_bytes();
    first == second && first == twin
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_rebalance.json".into())
    });
    let packets: u64 = if quick { 15_000 } else { 60_000 };
    // Aggregate service capacity RATE/LOAD split evenly: the frontend
    // keeps up overall, but a hot port under static hashing does not.
    let port_rate = RATE_BPS / LOAD / PORTS as f64;

    let stat = drive(
        &mut sequential(Placement::Hash, port_rate),
        packets,
        port_rate,
        false,
    );
    let dyn_seq = drive(
        &mut sequential(Placement::Dynamic, port_rate),
        packets,
        port_rate,
        true,
    );
    let dyn_par = drive(&mut parallel(port_rate), packets, port_rate, true);

    let agree = dyn_seq.hash == dyn_par.hash && dyn_seq.migrations == dyn_par.migrations;
    let ckpt_ok = checkpoint_deterministic(packets);

    let rows = vec![
        vec![
            "static hash".into(),
            format!("{:.4}", stat.makespan_s),
            format!("{:.3}", stat.balance),
            format!("{}", stat.served),
            format!("{}", stat.dropped),
            "-".into(),
        ],
        vec![
            "dynamic (sequential)".into(),
            format!("{:.4}", dyn_seq.makespan_s),
            format!("{:.3}", dyn_seq.balance),
            format!("{}", dyn_seq.served),
            format!("{}", dyn_seq.dropped),
            format!("{}", dyn_seq.migrations),
        ],
        vec![
            "dynamic (parallel)".into(),
            format!("{:.4}", dyn_par.makespan_s),
            format!("{:.3}", dyn_par.balance),
            format!("{}", dyn_par.served),
            format!("{}", dyn_par.dropped),
            format!("{}", dyn_par.migrations),
        ],
    ];
    print_table(
        &format!(
            "E20: dynamic rebalancing vs static hashing ({PORTS} ports, Zipf {ZIPF}, {packets} packets)"
        ),
        &["placement", "makespan s", "balance", "served", "dropped", "migrations"],
        &rows,
    );
    println!(
        "\nmakespan gain {:.3}x, balance gain {:.3}x, {} migration(s); seq/par agree: {}, checkpoint deterministic: {}",
        stat.makespan_s / dyn_seq.makespan_s,
        stat.balance / dyn_seq.balance,
        dyn_seq.migrations,
        if agree { "yes" } else { "NO" },
        if ckpt_ok { "yes" } else { "NO" },
    );

    let metrics = vec![
        (
            "rebalance_makespan_gain".to_string(),
            stat.makespan_s / dyn_seq.makespan_s,
        ),
        (
            "rebalance_balance_gain".to_string(),
            stat.balance / dyn_seq.balance,
        ),
        ("rebalance_balance_static".to_string(), stat.balance),
        (
            "ceil_rebalance_balance_dynamic".to_string(),
            dyn_seq.balance,
        ),
        (
            "ceil_rebalance_migrations".to_string(),
            dyn_seq.migrations as f64,
        ),
        (
            "ceil_rebalance_dropped".to_string(),
            (dyn_seq.dropped + dyn_par.dropped) as f64,
        ),
        ("rebalance_served".to_string(), dyn_seq.served as f64),
        (
            "rebalance_seq_par_agree".to_string(),
            f64::from(u8::from(agree)),
        ),
        (
            "rebalance_ckpt_deterministic".to_string(),
            f64::from(u8::from(ckpt_ok)),
        ),
    ];
    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write bench JSON");
        println!("wrote {path}");
    }
}
