//! **Experiment E2 — Fig. 7:** matcher circuit delay vs word length.
//!
//! Elaborates all five matching-circuit designs at each word width and
//! reports the measured critical path (fan-out-buffered gate levels).
//! The paper's curve shows the select & look-ahead design performing
//! "exceptionally well over a range of word widths up to 128 bits"; in
//! this structural model it is the fastest among the sub-quadratic-area
//! designs at every width and within a few levels of the flat look-ahead
//! (whose area disqualifies it — see Fig. 8 / E3).

use bench::print_table;
use matcher::{MatcherCircuit, MatcherKind};

fn main() {
    let widths = [4usize, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for kind in MatcherKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for w in widths {
            let c = MatcherCircuit::build(kind, w);
            row.push(format!("{} ({})", c.delay(), c.delay_unit()));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 7 — matcher delay in gate levels, buffered (unit-delay) model",
        &["design", "w=4", "w=8", "w=16", "w=32", "w=64", "w=128"],
        &rows,
    );

    // The fabricated configuration: a 16-bit select & look-ahead matcher.
    let select16 = MatcherCircuit::build(MatcherKind::SelectLookAhead, 16);
    let ripple16 = MatcherCircuit::build(MatcherKind::Ripple, 16);
    println!(
        "\n16-bit node (fabricated): select & look-ahead path = {} levels vs ripple {} — {:.1}x faster.",
        select16.delay(),
        ripple16.delay(),
        f64::from(ripple16.delay()) / f64::from(select16.delay()),
    );
    println!(
        "Paper reference point: the 16-bit select & look-ahead matcher closed timing at 154 MHz on a Stratix II (>44 Gb/s at 140-byte packets)."
    );
}
