//! **Experiment E14 — per-flow latency attribution:** the sojourn
//! pipeline end to end, as a deterministic regression gate.
//!
//! Two runs, both pure functions of the seeded workload:
//!
//! * **Sharded profile** — the wfqsim default 4-port, 16-flow seeded
//!   trace through [`ShardedLinkSim`] with latency attribution on. The
//!   exported metrics are lower-is-better `ceil_*` ceilings over every
//!   flow's sojourn histogram: worst p99 and max in sorter cycles, and
//!   worst p99 of the wall-clock sojourn in nanoseconds. Wall-clock here
//!   is *simulated* time (departure minus arrival), so it is exactly as
//!   bit-stable across hosts as the cycle counts.
//! * **Join-vs-direct agreement** — a single-shard [`HwLinkSim`] run
//!   with both attribution paths active at once: direct stamping via
//!   `dequeue_stamped`, and an [`EventJoiner`] replaying the traced
//!   Enqueue/Dequeue pairs. The two are stamped at the same points in
//!   the machine, so every per-flow cycle histogram must agree exactly;
//!   `latency_join_agreement` is 1.0 only when they do and no event was
//!   left unmatched. `latency_join_agreement_ports4` repeats the gate on
//!   a 4-port sharded run — it holds only because traced events carry
//!   global flow ids, so one joiner can merge all shards' rings.
//!
//! With `--json [PATH]` everything is written as a flat JSON object
//! (default `BENCH_latency.json`) for `check_regression`.

use bench::{json_object, print_table};
use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig, ShardedLinkSim, ShardedScheduler};
use tagsort::Geometry;
use telemetry::{EventJoiner, LatencyTracker, Snapshot, Telemetry};
use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, Packet, SizeDist};

const FLOWS: usize = 16;
const PORTS: usize = 4;
const RATE: f64 = 2e6;
const HORIZON_S: f64 = 1.0;
const SEED: u64 = 42;

/// The wfqsim default synthetic mix: CBR/IMIX-Poisson/bursty on-off in
/// rotation, weights 1..=N.
fn flows() -> Vec<FlowSpec> {
    (0..FLOWS)
        .map(|i| {
            let spec = FlowSpec::new(FlowId(i as u32), (i + 1) as f64, RATE * 0.9 / FLOWS as f64);
            match i % 3 {
                0 => spec
                    .size(SizeDist::Fixed(140))
                    .arrivals(ArrivalProcess::Cbr),
                1 => spec.size(SizeDist::Imix).arrivals(ArrivalProcess::Poisson),
                _ => spec
                    .size(SizeDist::Bimodal {
                        small: 40,
                        large: 1500,
                        p_small: 0.3,
                    })
                    .arrivals(ArrivalProcess::OnOff {
                        on_mean_s: 0.03,
                        off_mean_s: 0.03,
                    }),
            }
        })
        .collect()
}

fn config(trace_len: usize, rate: f64) -> SchedulerConfig {
    SchedulerConfig {
        geometry: Geometry::new(4, 5),
        tick_scale: rate / 50_000.0,
        capacity: (trace_len + 1).next_power_of_two(),
        ..SchedulerConfig::default()
    }
}

/// The sharded profile: worst-case sojourn ceilings over all flows.
fn sharded_profile(fl: &[FlowSpec], trace: &[Packet]) -> (Vec<(String, f64)>, Vec<Vec<String>>) {
    let fe = ShardedScheduler::new(fl, RATE, PORTS, config(trace.len(), RATE));
    let mut sim = ShardedLinkSim::new(fe).with_latency();
    sim.run(trace).expect("seeded trace fits the buffers");
    let lat = sim.latency().expect("latency attribution is on");

    let mut snap = Snapshot::empty(1);
    lat.export(&mut snap);
    let v = |key: &str| snap.value(key).unwrap_or_else(|| panic!("{key} missing"));

    let mut worst_p99_cycles = 0.0f64;
    let mut worst_max_cycles = 0.0f64;
    let mut worst_p99_ns = 0.0f64;
    let mut rows = Vec::new();
    for flow in 0..FLOWS {
        let p99 = v(&format!("flow{flow}_sojourn_p99"));
        let max = v(&format!("flow{flow}_sojourn_max"));
        let p99_ns = v(&format!("flow{flow}_sojourn_ns_p99"));
        worst_p99_cycles = worst_p99_cycles.max(p99);
        worst_max_cycles = worst_max_cycles.max(max);
        worst_p99_ns = worst_p99_ns.max(p99_ns);
        rows.push(vec![
            format!("flow {flow}"),
            format!("{:.0}", v(&format!("flow{flow}_sojourn_count"))),
            format!("{:.0}", v(&format!("flow{flow}_sojourn_p50"))),
            format!("{p99:.0}"),
            format!("{max:.0}"),
            format!("{:.3}", p99_ns / 1e6),
        ]);
    }
    let metrics = vec![
        ("latency_flows".into(), lat.flows() as f64),
        ("latency_samples".into(), lat.samples() as f64),
        ("ceil_worst_sojourn_p99_cycles".into(), worst_p99_cycles),
        ("ceil_worst_sojourn_max_cycles".into(), worst_max_cycles),
        ("ceil_worst_sojourn_p99_ms".into(), worst_p99_ns / 1e6),
    ];
    (metrics, rows)
}

/// Exports `tracker` and keeps only the cycle-histogram keys (the
/// event-joined tracker has no wall-clock figures to compare).
fn cycle_keys(tracker: &LatencyTracker) -> Vec<(String, f64)> {
    let mut snap = Snapshot::empty(1);
    tracker.export(&mut snap);
    snap.flatten()
        .into_iter()
        .filter(|(k, _)| k.contains("_sojourn_") && !k.contains("_ns_"))
        .collect()
}

/// Runs the single-shard pipeline with direct stamping and the event
/// joiner side by side; 1.0 when every per-flow cycle histogram agrees
/// exactly and no event was orphaned.
fn join_vs_direct(fl: &[FlowSpec], trace: &[Packet]) -> f64 {
    // Ring big enough that no event is evicted before the join.
    let ring = (3 * trace.len() + 1).next_power_of_two();
    let tel = Telemetry::with_tracing(1, ring);
    let mut hw = HwScheduler::new(fl, RATE, config(trace.len(), RATE));
    hw.attach_telemetry(&tel, 0);
    let mut sim = HwLinkSim::new(RATE, hw).with_latency();
    sim.run(trace).expect("seeded trace fits the buffers");
    let direct = sim.latency().expect("latency attribution is on");

    let mut joiner = EventJoiner::new();
    for event in tel.tracer().drain(0) {
        joiner.observe(&event);
    }
    if joiner.unmatched() > 0 || joiner.in_flight() > 0 {
        return 0.0;
    }
    let joined = cycle_keys(joiner.tracker());
    let direct_keys = cycle_keys(direct);
    if joined.is_empty() || joined != direct_keys {
        return 0.0;
    }
    1.0
}

/// The multi-port twin of [`join_vs_direct`]: a 4-port sharded run with
/// both attribution paths active. The traced events carry *global* flow
/// ids, so one joiner fed from every shard's ring must reproduce the
/// direct tracker's per-flow cycle histograms exactly.
fn join_vs_direct_sharded(fl: &[FlowSpec], trace: &[Packet]) -> f64 {
    let ring = (3 * trace.len() + 1).next_power_of_two();
    let tel = Telemetry::with_tracing(PORTS, ring);
    let mut fe = ShardedScheduler::new(fl, RATE, PORTS, config(trace.len(), RATE));
    fe.attach_telemetry(&tel);
    let mut sim = ShardedLinkSim::new(fe).with_latency();
    sim.run(trace).expect("seeded trace fits the buffers");
    let direct = sim.latency().expect("latency attribution is on");

    let mut joiner = EventJoiner::new();
    for port in 0..PORTS {
        for event in tel.tracer().drain(port) {
            joiner.observe(&event);
        }
    }
    if joiner.unmatched() > 0 || joiner.in_flight() > 0 {
        return 0.0;
    }
    let joined = cycle_keys(joiner.tracker());
    let direct_keys = cycle_keys(direct);
    if joined.is_empty() || joined != direct_keys {
        return 0.0;
    }
    1.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_latency.json".into())
    });

    let fl = flows();
    let trace = generate(&fl, HORIZON_S, SEED);
    let (mut metrics, rows) = sharded_profile(&fl, &trace);
    metrics.push(("latency_join_agreement".into(), join_vs_direct(&fl, &trace)));
    metrics.push((
        "latency_join_agreement_ports4".into(),
        join_vs_direct_sharded(&fl, &trace),
    ));

    print_table(
        &format!(
            "Per-flow sojourn — {PORTS}-port frontend, seeded trace ({} pkts)",
            trace.len()
        ),
        &["flow", "packets", "p50 cyc", "p99 cyc", "max cyc", "p99 ms"],
        &rows,
    );
    println!(
        "\nEvery figure is a pure function of the seeded workload (wall\n\
         clock is simulated time), so the ceil_* ceilings and the\n\
         join-vs-direct agreement bit are gated exactly, not as noisy\n\
         host measurements."
    );
    for (key, value) in &metrics {
        println!("  {key} = {value:.4}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
