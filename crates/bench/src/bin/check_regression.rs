//! CI bench-regression gate: compares a fresh bench JSON against the
//! committed baseline.
//!
//! ```text
//! check_regression <current.json> <baseline.json> <min_ratio>
//! ```
//!
//! Every metric in the **baseline** is looked up in the current run and
//! must satisfy `current / baseline >= min_ratio` (higher-is-better
//! throughputs/speedups; `0.8` fails a >20% drop). Metrics whose key
//! starts with `ceil_` are **lower-is-better ceilings** — drop counts,
//! peak occupancies, latency quantiles — and fail when
//! `current > baseline / min_ratio` (the same 20% slack, pointed the
//! other way); a `ceil_` baseline of exactly `0` demands the current
//! value stay `0`. Extra keys in the current run — wall-clock numbers,
//! new metrics not yet baselined — are ignored, so adding
//! instrumentation never breaks the gate. Exits non-zero, naming every
//! offender, on any regression, missing metric, or malformed file.

use std::process::ExitCode;

use bench::parse_json_numbers;

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_json_numbers(&text).ok_or_else(|| format!("{path}: not a flat JSON number object"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current_path, baseline_path, min_ratio] = &args[..] else {
        eprintln!("usage: check_regression <current.json> <baseline.json> <min_ratio>");
        return ExitCode::FAILURE;
    };
    let min_ratio: f64 = match min_ratio.parse() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => {
            eprintln!("min_ratio must be a number in [0, 1], got {min_ratio:?}");
            return ExitCode::FAILURE;
        }
    };
    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline.is_empty() {
        eprintln!("error: {baseline_path} gates nothing (empty baseline)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0;
    for (key, base) in &baseline {
        let Some((_, now)) = current.iter().find(|(k, _)| k == key) else {
            eprintln!("FAIL {key}: missing from {current_path}");
            failures += 1;
            continue;
        };
        if key.starts_with("ceil_") {
            // Lower-is-better ceiling; a zero baseline pins zero.
            if *base < 0.0 {
                eprintln!("FAIL {key}: ceiling baseline {base} is negative");
                failures += 1;
                continue;
            }
            let limit = base / min_ratio;
            if *now > limit {
                eprintln!("FAIL {key}: {now} exceeds ceiling {limit} (baseline {base})");
                failures += 1;
            } else {
                println!("ok   {key}: {now} within ceiling {limit} (baseline {base})");
            }
            continue;
        }
        if *base <= 0.0 {
            eprintln!("FAIL {key}: baseline {base} is not a positive metric");
            failures += 1;
            continue;
        }
        let ratio = now / base;
        if ratio < min_ratio {
            eprintln!(
                "FAIL {key}: {now} is {:.1}% of baseline {base} (floor {:.1}%)",
                ratio * 100.0,
                min_ratio * 100.0
            );
            failures += 1;
        } else {
            println!(
                "ok   {key}: {now} vs baseline {base} ({:.1}%)",
                ratio * 100.0
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} metric(s) outside the {min_ratio} regression bounds");
        return ExitCode::FAILURE;
    }
    println!("all {} gated metric(s) within bounds", baseline.len());
    ExitCode::SUCCESS
}
