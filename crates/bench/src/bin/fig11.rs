//! **Experiment E6 — Fig. 11:** inserting duplicate tag values.
//!
//! Replays the paper's two-step example: two tags of value 5 arrive,
//! then a 6. The translation table must track the *newest* 5 so the 6
//! lands after it, and service must be first-come-first-served among the
//! duplicates.

use bench::print_table;
use tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};

fn main() {
    let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);

    // Step 1 (paper): the list holds ... 5 ... ; a second 5 arrives and
    // is inserted after the existing one; the translation table entry
    // moves to the newest 5.
    c.insert(Tag(4), PacketRef(0)).expect("space");
    c.insert(Tag(5), PacketRef(1)).expect("space");
    c.insert(Tag(7), PacketRef(2)).expect("space");
    c.insert(Tag(5), PacketRef(3)).expect("space");

    // Step 2 (paper): tag 6 must land after the *newest* 5.
    c.insert(Tag(6), PacketRef(4)).expect("space");

    let list: Vec<String> = c
        .iter_sorted()
        .map(|(t, p)| format!("{}({})", t.value(), p.index()))
        .collect();
    print_table(
        "Fig. 11 — list after inserting 4, 5, 7, 5, 6 (value(payload))",
        &["position", "entry"],
        &list
            .iter()
            .enumerate()
            .map(|(i, e)| vec![i.to_string(), e.clone()])
            .collect::<Vec<_>>(),
    );

    let served: Vec<(u32, u32)> = std::iter::from_fn(|| c.pop_min())
        .map(|(t, p)| (t.value(), p.index()))
        .collect();
    print_table(
        "service order",
        &["tag", "payload (arrival order)"],
        &served
            .iter()
            .map(|(t, p)| vec![t.to_string(), p.to_string()])
            .collect::<Vec<_>>(),
    );

    assert_eq!(
        served,
        vec![(4, 0), (5, 1), (5, 3), (6, 4), (7, 2)],
        "duplicates must serve first-come-first-served and 6 must follow the newest 5"
    );
    println!(
        "\nReproduced: the translation table always points at the most recently\n\
         added duplicate, so tree search results remain valid and equal tags\n\
         leave in arrival order (the paper's FCFS property)."
    );
}
