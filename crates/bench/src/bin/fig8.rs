//! **Experiment E3 — Fig. 8:** matcher circuit area vs word length.
//!
//! Reports the LUT-style gate count of each design across word widths.
//! The paper's shape to reproduce: ripple cheapest and linear, flat
//! look-ahead quadratic (prohibitive past ~32 bits), select & look-ahead
//! in between — the delay-area sweet spot that put it in the fabricated
//! circuit.

use bench::{print_bars, print_table};
use matcher::{MatcherCircuit, MatcherKind};

fn main() {
    let widths = [4usize, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for kind in MatcherKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for w in widths {
            row.push(MatcherCircuit::build(kind, w).area().to_string());
        }
        rows.push(row);
    }
    print_table(
        "Fig. 8 — matcher area in gate-equivalents (LUT-style model)",
        &["design", "w=4", "w=8", "w=16", "w=32", "w=64", "w=128"],
        &rows,
    );

    let bars: Vec<(String, f64)> = MatcherKind::ALL
        .iter()
        .map(|&k| {
            (
                k.name().to_string(),
                f64::from(MatcherCircuit::build(k, 64).area()),
            )
        })
        .collect();
    print_bars("area at 64 bits", &bars, "gates");

    let bars: Vec<(String, f64)> = MatcherKind::ALL
        .iter()
        .map(|&k| {
            let c = MatcherCircuit::build(k, 16);
            (
                k.name().to_string(),
                f64::from(c.delay()) * f64::from(c.area()),
            )
        })
        .collect();
    print_bars(
        "delay x area at the fabricated width (16) — select wins",
        &bars,
        "",
    );
}
