//! **Experiment E15 — fault tolerance:** the SEU injection, scrubbing,
//! and self-repair machinery as a deterministic regression gate.
//!
//! Every metric is a pure function of the seeded workload and the seeded
//! fault plan — nothing here reads a wall clock — so the gate is
//! bit-stable on any host:
//!
//! * **Scrub-and-repair exactness** — a trie-only fault campaign under
//!   `ScrubAndRepair` with the audit width set to the full section count
//!   repairs every fault in the round it lands, before the pop that
//!   round serves; `fault_scrub_agreement` is 1.0 only when the faulted
//!   run's dequeue sequence is *identical* to the fault-free run's.
//! * **Detection economics** — an any-component campaign under
//!   `DetectAndCount` exports the detect-latency percentiles (cycles
//!   from injection to parity/scrub/structural detection) and gates the
//!   silent-corruption count as a lower-is-better ceiling, plus a
//!   `fault_reconciliation` bit for the ledger identity
//!   `detected + silent == injected`.
//! * **Incremental scrubbing** — the same trie campaign audited one
//!   section per round (the CLI default) gates how much damage an
//!   economical scrub width leaves unrepaired, and the mean repair cost
//!   in cycles.
//!
//! Flags: `--quick` shortens the workload; `--json [PATH]` writes the
//! flat JSON object (default `BENCH_faults.json`) for `check_regression`.

use bench::{json_object, print_table};
use faultsim::{FaultConfig, FaultPolicy, FaultSpec};
use scheduler::{HwScheduler, SchedulerConfig};
use tagsort::Geometry;
use telemetry::Telemetry;
use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, Packet, SizeDist};

const FLOWS: usize = 16;
const RATE: f64 = 2e6;
const SEED: u64 = 42;
/// Trie-only campaign for the scrub runs.
const TRIE_SPEC: &str = "24@11:trie:1";
/// Any-component campaign for the detection run.
const ANY_SPEC: &str = "32@7:any:1";

/// The wfqsim default synthetic mix: CBR/IMIX-Poisson/bursty on-off in
/// rotation, weights 1..=N.
fn flows() -> Vec<FlowSpec> {
    (0..FLOWS)
        .map(|i| {
            let spec = FlowSpec::new(FlowId(i as u32), (i + 1) as f64, RATE * 0.9 / FLOWS as f64);
            match i % 3 {
                0 => spec
                    .size(SizeDist::Fixed(140))
                    .arrivals(ArrivalProcess::Cbr),
                1 => spec.size(SizeDist::Imix).arrivals(ArrivalProcess::Poisson),
                _ => spec
                    .size(SizeDist::Bimodal {
                        small: 40,
                        large: 1500,
                        p_small: 0.3,
                    })
                    .arrivals(ArrivalProcess::OnOff {
                        on_mean_s: 0.03,
                        off_mean_s: 0.03,
                    }),
            }
        })
        .collect()
}

fn config(trace_len: usize, faults: Option<FaultConfig>) -> SchedulerConfig {
    SchedulerConfig {
        geometry: Geometry::paper(),
        tick_scale: RATE / 50_000.0,
        capacity: (trace_len + 1).next_power_of_two(),
        faults,
        ..SchedulerConfig::default()
    }
}

/// Enqueues the whole trace, drains everything, and returns the served
/// sequence alongside the scheduler for ledger inspection.
fn run(
    fl: &[FlowSpec],
    trace: &[Packet],
    faults: Option<FaultConfig>,
    tel: &Telemetry,
) -> (Vec<Packet>, HwScheduler) {
    let mut hw = HwScheduler::new(fl, RATE, config(trace.len(), faults));
    hw.attach_telemetry(tel, 0);
    for p in trace {
        hw.enqueue(*p).expect("seeded trace fits the buffers");
    }
    let mut served = Vec::new();
    while let Some(p) = hw.dequeue() {
        served.push(p);
    }
    hw.reconcile_faults();
    (served, hw)
}

fn fault_cfg(
    spec: &str,
    policy: FaultPolicy,
    trace_len: usize,
    scrub_sections: u32,
) -> FaultConfig {
    let spec: FaultSpec = spec.parse().expect("bench fault spec");
    let mut cfg = FaultConfig::new(spec, policy, 2 * trace_len as u64);
    cfg.scrub_sections = scrub_sections;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_faults.json".into())
    });

    let fl = flows();
    let horizon = if quick { 0.25 } else { 1.0 };
    let trace = generate(&fl, horizon, SEED);
    let sections = Geometry::paper().sections();

    // Fault-free reference.
    let (reference, _) = run(&fl, &trace, None, &Telemetry::disabled());

    // Scrub-and-repair with a full audit every round: exact agreement.
    let full_cfg = fault_cfg(
        TRIE_SPEC,
        FaultPolicy::ScrubAndRepair,
        trace.len(),
        sections,
    );
    let tel_full = Telemetry::new(1);
    let (served_full, hw_full) = run(&fl, &trace, Some(full_cfg), &tel_full);
    let agreement = f64::from(served_full == reference);
    let (inj_full, det_full, rep_full, silent_full) = hw_full.fault_totals();
    let snap_full = tel_full.snapshot();
    let repair_cost_mean = snap_full
        .value("fault_repair_cost_cycles_mean")
        .unwrap_or(0.0);

    // The same campaign audited one section per round (the CLI default).
    let incr_cfg = fault_cfg(TRIE_SPEC, FaultPolicy::ScrubAndRepair, trace.len(), 1);
    let (_, hw_incr) = run(&fl, &trace, Some(incr_cfg), &Telemetry::new(1));
    let (inj_incr, _, rep_incr, silent_incr) = hw_incr.fault_totals();

    // Detect-and-count over every component: detection latency and the
    // ledger identity.
    let det_cfg = fault_cfg(ANY_SPEC, FaultPolicy::DetectAndCount, trace.len(), 1);
    let tel_det = Telemetry::new(1);
    let (_, hw_det) = run(&fl, &trace, Some(det_cfg), &tel_det);
    let (inj_det, det_det, _, silent_det) = hw_det.fault_totals();
    let reconciled = f64::from(det_det + silent_det == inj_det);
    let snap_det = tel_det.snapshot();
    let p50 = snap_det
        .value("fault_detect_latency_cycles_p50")
        .unwrap_or(0.0);
    let p99 = snap_det
        .value("fault_detect_latency_cycles_p99")
        .unwrap_or(0.0);

    let metrics: Vec<(String, f64)> = vec![
        ("fault_scrub_agreement".into(), agreement),
        ("fault_reconciliation".into(), reconciled),
        ("faults_injected_scrub".into(), inj_full as f64),
        ("faults_repaired_full_scrub".into(), rep_full as f64),
        ("ceil_silent_scrub_repair".into(), silent_full as f64),
        ("faults_repaired_incremental".into(), rep_incr as f64),
        ("ceil_silent_incremental".into(), silent_incr as f64),
        (
            "ceil_fault_repair_cost_mean_cycles".into(),
            repair_cost_mean,
        ),
        ("faults_injected_detect".into(), inj_det as f64),
        ("faults_detected".into(), det_det as f64),
        ("ceil_silent_detect_and_count".into(), silent_det as f64),
        ("ceil_fault_detect_latency_p50_cycles".into(), p50),
        ("ceil_fault_detect_latency_p99_cycles".into(), p99),
    ];

    print_table(
        &format!(
            "Fault tolerance — seeded trace ({} pkts), paper geometry ({sections} sections)",
            trace.len()
        ),
        &[
            "campaign", "policy", "injected", "detected", "repaired", "silent",
        ],
        &[
            vec![
                TRIE_SPEC.into(),
                "scrub-and-repair (full audit)".into(),
                inj_full.to_string(),
                det_full.to_string(),
                rep_full.to_string(),
                silent_full.to_string(),
            ],
            vec![
                TRIE_SPEC.into(),
                "scrub-and-repair (1 section/round)".into(),
                inj_incr.to_string(),
                "-".into(),
                rep_incr.to_string(),
                silent_incr.to_string(),
            ],
            vec![
                ANY_SPEC.into(),
                "detect-and-count".into(),
                inj_det.to_string(),
                det_det.to_string(),
                "-".into(),
                silent_det.to_string(),
            ],
        ],
    );
    println!(
        "\nAll figures are pure functions of the seeded workload and the\n\
         seeded fault plan. The agreement and reconciliation bits must\n\
         stay exactly 1.0; the ceil_* silent-corruption counts are gated\n\
         as ceilings (lower is better)."
    );
    for (key, value) in &metrics {
        println!("  {key} = {value:.4}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
