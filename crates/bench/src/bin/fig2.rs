//! **Experiment E8 — Fig. 2:** the sort model vs the search model.
//!
//! The paper's §II-C argument: placing the lookup at the *input* (sort
//! model) makes the service of the smallest tag depend only on a fixed
//! memory access, while the search model's service time varies up to its
//! worst case — unacceptable when every other scheduler module
//! synchronizes around a fixed service slot. This binary measures the
//! per-retrieval access distribution of representatives of both models
//! under the same interleaved workload.

use baselines::{BinaryCam, BinningCbfq, MinTagQueue, MultiBitTreeQueue, Tcam};
use bench::{print_table, tag_workload};

/// Per-retrieval access samples for one method.
fn service_profile(method: &mut dyn MinTagQueue, seed: u64) -> (u64, f64, u64) {
    let items = tag_workload(4000, 12, seed);
    let (mut min, mut max, mut sum, mut n) = (u64::MAX, 0u64, 0u64, 0u64);
    for chunk in items.chunks(8) {
        for &(t, p) in chunk {
            method.insert(t, p);
        }
        // Serve half of what arrived, sampling each retrieval's cost.
        for _ in 0..4 {
            method.reset_stats();
            if method.pop_min().is_some() {
                let a = method.stats().worst_op_accesses();
                min = min.min(a);
                max = max.max(a);
                sum += a;
                n += 1;
            }
        }
    }
    while method.pop_min().is_some() {}
    (min, sum as f64 / n as f64, max)
}

fn main() {
    let mut methods: Vec<(Box<dyn MinTagQueue>, &str)> = vec![
        (Box::new(MultiBitTreeQueue::new(12)), "sort"),
        (Box::new(BinningCbfq::new(12, 64)), "search"),
        (Box::new(Tcam::new(12)), "search"),
        (Box::new(BinaryCam::new(12)), "search"),
    ];
    let mut rows = Vec::new();
    // The full sort/retrieve circuit first: its retrieval is a fixed
    // four-cycle storage slot regardless of contents.
    {
        use tagsort::{Geometry, SortRetrieveCircuit};
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 8192);
        let items = tag_workload(4000, 12, 99);
        let (mut min, mut max) = (u64::MAX, 0u64);
        let mut served = 0u64;
        let mut total = 0u64;
        for chunk in items.chunks(8) {
            for &(t, p) in chunk {
                c.insert(t, p).unwrap();
            }
            for _ in 0..4 {
                let before = c.cycles();
                if c.pop_min().is_some() {
                    let cost = c.cycles().since(before);
                    min = min.min(cost);
                    max = max.max(cost);
                    total += cost;
                    served += 1;
                }
            }
        }
        rows.push(vec![
            "sort/retrieve circuit (cycles)".into(),
            "sort".into(),
            min.to_string(),
            format!("{:.1}", total as f64 / served as f64),
            max.to_string(),
            if min == max { "FIXED" } else { "variable" }.to_string(),
        ]);
    }
    for (method, model) in &mut methods {
        let (min, mean, max) = service_profile(method.as_mut(), 99);
        rows.push(vec![
            format!("{} (accesses)", method.name()),
            model.to_string(),
            min.to_string(),
            format!("{mean:.1}"),
            max.to_string(),
            if max - min <= 1 { "~fixed" } else { "variable" }.to_string(),
        ]);
    }
    print_table(
        "Fig. 2 — accesses per retrieval of the smallest tag",
        &["method", "model", "min", "mean", "max", "service time"],
        &rows,
    );
    println!(
        "\nThe sort-model tree serves every retrieval in the same fixed number of\n\
         accesses; the search-model structures vary, so only their worst case can\n\
         be guaranteed — the paper's reason for adopting the sort model."
    );
}
