//! **Experiment E13 — telemetry overhead:** throughput cost of the
//! telemetry subsystem on the sharded frontend, in three configurations:
//!
//! * **off** — a disabled [`Telemetry`] handle is attached, so every
//!   record site takes the branch-and-return path. This is the cost the
//!   subsystem imposes on uninstrumented production runs.
//! * **counters** — metrics enabled (per-shard counters, gauges,
//!   histograms), event tracing off.
//! * **tracing** — metrics plus a bounded per-shard event ring, sized
//!   small enough that eviction churn is part of the measured cost.
//!
//! Each mode drives the same drifting-tag enqueue+dequeue pair workload
//! as the E11 throughput bench and keeps the best of [`REPS`]
//! repetitions (interruptions only ever slow a timed loop down). The
//! gated metrics are the same-host ratios `counters_over_off_ratio` and
//! `tracing_over_off_ratio` — host speed divides out, so a drop means
//! instrumentation genuinely got more expensive per packet.
//!
//! The bench also replays a deterministic small-buffer overload with
//! counters attached and exports lower-is-better `ceil_*` metrics from
//! the resulting snapshot — drops, peak queue depth, p99 tag-sort
//! latency. These come from the cycle-accurate simulation, are
//! bit-stable across hosts, and are gated by `check_regression`'s
//! ceiling rule (fail when current > baseline / min_ratio).
//!
//! With `--json [PATH]` everything is written as a flat JSON object
//! (default `BENCH_telemetry.json`) for the regression gate.

use std::time::Instant;

use bench::{eng, json_object, print_table};
use scheduler::{SchedulerConfig, ShardedScheduler};
use telemetry::Telemetry;
use traffic::{FlowId, FlowSpec, Packet, Time};

const FLOWS: usize = 64;
const PORTS: usize = 4;
const WARMUP: usize = 64;
/// Timed enqueue+dequeue pairs per port.
const PAIRS_PER_PORT: usize = 20_000;
/// Best-of repetitions per mode (timing noise is one-sided).
const REPS: usize = 3;
/// Event-ring slots per shard in tracing mode — small on purpose, so
/// the measured cost includes steady-state eviction, not just filling.
const TRACE_RING: usize = 256;

#[derive(Clone, Copy)]
enum Mode {
    Off,
    Counters,
    Tracing,
}

impl Mode {
    fn telemetry(self) -> Telemetry {
        match self {
            Mode::Off => Telemetry::disabled(),
            Mode::Counters => Telemetry::new(PORTS),
            Mode::Tracing => Telemetry::with_tracing(PORTS, TRACE_RING),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Counters => "counters",
            Mode::Tracing => "counters+tracing",
        }
    }
}

fn flows() -> Vec<FlowSpec> {
    (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect()
}

/// The E11 drifting-tag pair workload with `mode`'s telemetry attached;
/// returns measured packets/s over the timed pair loops (warm-up
/// excluded).
fn run(mode: Mode) -> f64 {
    let fl = flows();
    let tel = mode.telemetry();
    let mut fe = ShardedScheduler::new(
        &fl,
        40e9,
        PORTS,
        SchedulerConfig {
            capacity: 1 << 14,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    fe.attach_telemetry(&tel);
    let mut t = 0.0;
    let mut per_port: Vec<Vec<Packet>> = vec![Vec::new(); PORTS];
    for seq in 0..((WARMUP + PAIRS_PER_PORT) * PORTS) as u64 {
        t += 28e-9; // 140 B at 40 Gb/s
        let pkt = Packet {
            flow: FlowId((seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        };
        per_port[fe.port_of(pkt.flow).expect("configured flow")].push(pkt);
    }
    let mut timed = 0.0f64;
    let mut pairs = 0usize;
    for (port, arrivals) in per_port.iter().enumerate() {
        let (warm, paired) = arrivals.split_at(WARMUP.min(arrivals.len()));
        // Warm a backlog so the shard stays busy through the timed loop.
        for &pkt in warm {
            fe.enqueue(pkt).expect("capacity");
        }
        let started = Instant::now();
        for &pkt in paired {
            fe.enqueue(pkt).expect("capacity");
            fe.dequeue_port(port).expect("backlogged");
        }
        timed += started.elapsed().as_secs_f64();
        pairs += paired.len();
    }
    2.0 * pairs as f64 / timed
}

/// Deterministic overload: a burst far past a tiny shared buffer, then a
/// full drain, with counters attached. The snapshot's drop count, peak
/// queue depth, and p99 tag-sort latency are pure functions of the
/// workload — any growth means the pipeline itself changed.
fn deterministic_profile() -> Vec<(String, f64)> {
    let fl = flows();
    let tel = Telemetry::new(PORTS);
    let mut fe = ShardedScheduler::new(
        &fl,
        40e9,
        PORTS,
        SchedulerConfig {
            capacity: 64,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    fe.attach_telemetry(&tel);
    let mut t = 0.0;
    for seq in 0..4096u64 {
        t += 28e-9;
        let pkt = Packet {
            flow: FlowId((seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        };
        // Rejections past each shard's 64-slot buffer are the point.
        let _ = fe.enqueue(pkt);
    }
    while fe.dequeue().is_some() {}
    let snap = tel.snapshot();
    let v = |key: &str| snap.value(key).unwrap_or_else(|| panic!("{key} missing"));
    vec![
        ("ceil_overload_drops".into(), v("sched_dropped_total")),
        ("ceil_overload_peak_depth".into(), v("queue_depth_peak")),
        (
            "ceil_tag_sort_p99_cycles".into(),
            v("tag_sort_latency_cycles_p99"),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_telemetry.json".into())
    });

    let modes = [Mode::Off, Mode::Counters, Mode::Tracing];
    let mut best = Vec::new();
    for &mode in &modes {
        let mut pps = run(mode);
        for _ in 1..REPS {
            pps = pps.max(run(mode));
        }
        best.push(pps);
    }

    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (&mode, &pps) in modes.iter().zip(&best) {
        let ratio = pps / best[0];
        rows.push(vec![
            mode.name().into(),
            format!("{}pps", eng(pps)),
            format!("{:.1}%", ratio * 100.0),
        ]);
    }
    metrics.push(("telemetry_off_mpps".into(), best[0] / 1e6));
    metrics.push(("counters_over_off_ratio".into(), best[1] / best[0]));
    metrics.push(("tracing_over_off_ratio".into(), best[2] / best[0]));
    metrics.extend(deterministic_profile());

    print_table(
        &format!("Telemetry overhead — {PORTS}-port frontend, pair workload"),
        &["mode", "throughput", "vs off"],
        &rows,
    );
    println!(
        "\nRatios are same-host (host speed divides out): the gate fails\n\
         when enabling counters or tracing costs materially more per\n\
         packet than at baseline. The ceil_* metrics replay a\n\
         deterministic small-buffer overload and gate drops, peak queue\n\
         depth, and p99 tag-sort latency as ceilings (lower is better).\n\
         The absolute off-mode Mpps is informational, never gated."
    );
    for (key, value) in &metrics {
        println!("  {key} = {value:.4}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
