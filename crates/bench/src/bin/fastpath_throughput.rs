//! **Experiment E16 — software fast path:** real wall-clock throughput
//! of the FFS (find-first-set) sorter behind the full scheduler, against
//! the cycle-accurate trie simulation and the binary-heap oracle.
//!
//! The backends are sequence-identical by contract (the conformance
//! matrix in `crates/scheduler/tests/backend_matrix.rs` pins that), so
//! this experiment measures the one thing allowed to differ: how fast
//! each engine executes the same drifting-tag pair workload (steady
//! enqueue+dequeue pairs whose finishing tags sweep upward with bounded
//! spread — the Fig. 6 regime, as in E11) on this host.
//!
//! * `fastpath_wall_mpps` — the FFS sorter's end-to-end wall-clock
//!   throughput in Mpps (enqueues + dequeues). **Gated in CI** against
//!   `ci/baseline_fastpath.json` with a generous lower bound, and — like
//!   E12 — only on multi-core runners, where wall-clock numbers are
//!   meaningful.
//! * `fastpath_speedup_vs_trie` — same-host ratio of fastpath to trie
//!   wall-clock throughput. Host speed divides out; informational.
//! * `trie_wall_mpps`, `heap_wall_mpps` — context, never gated (the trie
//!   number is the cost of *simulating* the circuit, not of the silicon
//!   it models).
//!
//! With `--json [PATH]` the metrics are written as a flat JSON object
//! (default `BENCH_fastpath.json`) for `check_regression`. Each backend
//! keeps the best of [`REPS`] repetitions: timing noise on a loaded host
//! is one-sided, so the maximum is the stable estimate.

use std::time::Instant;

use bench::{eng, json_object, print_table};
use fastpath::FfsSorter;
use scheduler::{HwScheduler, SchedulerConfig};
use tagsort::{HeapSorter, SortBackend, SortRetrieveCircuit};
use traffic::{FlowId, FlowSpec, Packet, Time};

const FLOWS: usize = 64;
/// Backlog warmed before timing so the sorter stays busy throughout.
const WARMUP: usize = 64;
/// Timed enqueue+dequeue pairs per repetition.
const PAIRS: usize = 200_000;
/// Best-of repetitions per backend (interruptions only slow a loop
/// down; a genuine regression degrades every repetition).
const REPS: usize = 3;

/// The E11 drifting-tag pair workload through a single `B`-backed
/// scheduler, returning wall-clock packets/s (enqueues + dequeues).
fn run<B: SortBackend>() -> f64 {
    let flows: Vec<FlowSpec> = (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect();
    let mut hw = HwScheduler::<B>::with_backend(
        &flows,
        40e9,
        SchedulerConfig {
            capacity: 1 << 14,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    let mut t = 0.0;
    let mut arrivals = Vec::with_capacity(WARMUP + PAIRS);
    for seq in 0..(WARMUP + PAIRS) as u64 {
        t += 28e-9; // 140 B at 40 Gb/s
        arrivals.push(Packet {
            flow: FlowId((seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        });
    }
    let (warm, timed) = arrivals.split_at(WARMUP);
    for &pkt in warm {
        hw.enqueue(pkt).expect("capacity");
    }
    let started = Instant::now();
    for &pkt in timed {
        hw.enqueue(pkt).expect("capacity");
        hw.dequeue().expect("backlogged");
    }
    2.0 * timed.len() as f64 / started.elapsed().as_secs_f64()
}

fn best_of<B: SortBackend>() -> f64 {
    (0..REPS).fold(0.0f64, |best, _| best.max(run::<B>()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_fastpath.json".into())
    });

    let trie = best_of::<SortRetrieveCircuit>();
    let ffs = best_of::<FfsSorter>();
    let heap = best_of::<HeapSorter>();

    let mut rows = Vec::new();
    for (name, pps) in [("trie", trie), ("fastpath", ffs), ("heap", heap)] {
        rows.push(vec![
            name.into(),
            format!("{}pps", eng(pps)),
            format!("{:.2}x", pps / trie),
        ]);
    }
    print_table(
        "Sorting backends — wall-clock scheduler throughput (this host)",
        &["backend", "wall-clock", "vs trie"],
        &rows,
    );
    println!(
        "\nEvery backend serves the identical departure sequence; only the\n\
         execution model differs. The trie row is the cost of simulating\n\
         the circuit cycle by cycle — the hardware it models runs at\n\
         35.8 Mpps regardless of this host. The fastpath row is real\n\
         software forwarding capacity and is the number CI gates."
    );

    let metrics: Vec<(String, f64)> = vec![
        ("fastpath_wall_mpps".into(), ffs / 1e6),
        ("fastpath_speedup_vs_trie".into(), ffs / trie),
        ("trie_wall_mpps".into(), trie / 1e6),
        ("heap_wall_mpps".into(), heap / 1e6),
    ];
    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
