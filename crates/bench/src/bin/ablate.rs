//! **Ablations** of the design choices DESIGN.md §6 calls out:
//!
//! 1. Branching factor — the paper argues a multi-bit tree beats a
//!    binary tree on both accesses and memory (eq. (3) discussion).
//! 2. Equal vs unequal node widths — §III-A rejects unequal widths
//!    because "the total search time will be most affected by the search
//!    time needed for the widest node".
//! 3. Duplicate policy — Fig. 11's most-recent rule vs a (broken)
//!    first-instance rule.

use bench::{print_table, tag_workload};
use matcher::{MatcherCircuit, MatcherKind};
use tagsort::{Geometry, Tag};

fn main() {
    // --- 1. Branching-factor sweep for 12-bit tags ----------------------
    let mut rows = Vec::new();
    for (bits, levels) in [(1u32, 12u32), (2, 6), (3, 4), (4, 3), (6, 2)] {
        let g = Geometry::new(bits, levels);
        let mut trie = MultiBitTrie::new(g);
        for &(t, _) in &tag_workload(2000, 12, 5) {
            trie.insert_marker(t);
        }
        trie.reset_stats();
        for &(t, _) in &tag_workload(500, 12, 6) {
            let _ = trie.closest_at_or_below(t);
        }
        let matcher = MatcherCircuit::build(MatcherKind::SelectLookAhead, g.branching() as usize);
        rows.push(vec![
            format!("BF={} ({} levels)", g.branching(), levels),
            trie.stats().worst_op_accesses().to_string(),
            g.tree_bits_total().to_string(),
            matcher.delay().to_string(),
            (matcher.delay() * levels).to_string(),
        ]);
    }
    print_table(
        "Ablation 1 — branching factor (12-bit tags)",
        &[
            "geometry",
            "accesses/lookup",
            "tree bits (eq. 3)",
            "node matcher delay",
            "total search depth",
        ],
        &rows,
    );
    println!(
        "Paper's choice (BF=16, 3 levels) minimizes total search depth while\n\
         keeping tree memory modest — \"using a multi-bit tree rather than a\n\
         binary tree allows the search operation to be accelerated as well as\n\
         requiring less memory\" (fewer, wider nodes vs 2^13-2 binary nodes)."
    );

    // --- 2. Unequal node widths ------------------------------------------
    // A 12-bit tag as 6+4+2 bits vs 4+4+4: per-level matcher delays.
    let unequal = [6usize, 4, 2];
    let equal = [4usize, 4, 4];
    let delay_of =
        |bits: usize| MatcherCircuit::build(MatcherKind::SelectLookAhead, 1 << bits).delay();
    let worst_unequal = unequal.iter().map(|&b| delay_of(b)).max().unwrap();
    let worst_equal = equal.iter().map(|&b| delay_of(b)).max().unwrap();
    print_table(
        "Ablation 2 — equal vs unequal node widths (12-bit tags, 3 levels)",
        &[
            "layout",
            "per-level matcher delays",
            "pipeline-critical delay",
        ],
        &[
            vec![
                "unequal 64/16/4-bit nodes".into(),
                unequal
                    .iter()
                    .map(|&b| delay_of(b).to_string())
                    .collect::<Vec<_>>()
                    .join(" / "),
                worst_unequal.to_string(),
            ],
            vec![
                "equal 16/16/16-bit nodes".into(),
                equal
                    .iter()
                    .map(|&b| delay_of(b).to_string())
                    .collect::<Vec<_>>()
                    .join(" / "),
                worst_equal.to_string(),
            ],
        ],
    );
    println!(
        "Paper §III-A: with a pipelined level-per-stage design the clock is set\n\
         by the widest node — equal widths equalize stage delays ({worst_equal} vs\n\
         {worst_unequal} gate levels here), confirming the paper's rationale."
    );

    // --- 3. Duplicate policy ----------------------------------------------
    // Most-recent (the paper's rule) keeps insertion O(1) relative to the
    // duplicate run; pointing at the *first* instance would require
    // walking the run to preserve FCFS.
    let mut c = tagsort::SortRetrieveCircuit::new(Geometry::paper(), 4096);
    for i in 0..1000u32 {
        c.insert(Tag(7), tagsort::PacketRef(i)).expect("capacity");
    }
    c.insert(Tag(8), tagsort::PacketRef(1000))
        .expect("capacity");
    let order_ok = std::iter::from_fn(|| c.pop_min())
        .map(|(_, p)| p.index())
        .eq(0..=1000);
    print_table(
        "Ablation 3 — duplicate policy (1000 equal tags + one successor)",
        &["policy", "list walk per duplicate insert", "FCFS preserved"],
        &[
            vec![
                "most-recent pointer (paper Fig. 11)".into(),
                "0 (translation table hit)".into(),
                if order_ok { "yes" } else { "NO" }.into(),
            ],
            vec![
                "first-instance pointer (hypothetical)".into(),
                "O(duplicates) — up to 999 links here".into(),
                "only with the walk".into(),
            ],
        ],
    );
    assert!(order_ok);

    // --- 4. Leaf-level memory banking --------------------------------------
    // §IV: the bottom tree level is "32 small distributed memory blocks"
    // so the parallel primary/backup descents rarely contend.
    use tagsort::{BankModel, MultiBitTrie};
    let geometry = Geometry::paper();
    let mut trie = MultiBitTrie::new(geometry);
    let mut state = 0x5eed_1234u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..400 {
        trie.insert_marker(Tag((next() % 4096) as u32));
    }
    let probes: Vec<u32> = (0..5000).map(|_| (next() % 4096) as u32).collect();
    let mut rows = Vec::new();
    for banks in [1u32, 2, 8, 32] {
        let mut model = BankModel::new(geometry, banks);
        for &p in &probes {
            let (_, trace) = trie.closest_with_trace(Tag(p));
            model.record(&trace);
        }
        rows.push(vec![
            banks.to_string(),
            model.dual_access_searches().to_string(),
            model.conflicts().to_string(),
            format!("{:.2}%", model.conflict_rate() * 100.0),
            format!("{:.3}", model.mean_stage_cycles()),
        ]);
    }
    print_table(
        "Ablation 4 — leaf-level banking (5000 searches, 400 markers)",
        &[
            "banks",
            "dual-leaf searches",
            "conflicts",
            "stall rate",
            "mean stage cycles",
        ],
        &rows,
    );
    println!(
        "One bank serializes every primary+backup leaf pair; the paper's 32\n\
         distributed blocks keep the search stage at its four-cycle beat."
    );
}
