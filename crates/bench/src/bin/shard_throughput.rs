//! **Experiment E11 — multi-port scaling:** aggregate throughput of the
//! sharded frontend at 1, 2, 4, and 8 output ports.
//!
//! Each port replicates the paper's sort/retrieve circuit, so every
//! shard keeps the fixed four-cycle slot no matter how the others are
//! loaded. This experiment drives the packet-level analogue of the
//! drifting tag workload (steady enqueue+dequeue pairs whose finishing
//! tags sweep upward with bounded spread, the Fig. 6 regime) through
//! every port count and reports two distinct speedups:
//!
//! * **modeled** aggregate Mpps — per-shard cycle accounting at the
//!   paper's 143.2 MHz clock. Deterministic, but *definitional*: each
//!   shard's slot cost is 4 cycles by construction, so the modeled
//!   speedup is exactly the port count. Gating it in CI only catches
//!   changes to the cycle model itself, never behavioral regressions.
//! * **measured** speedup — each port's enqueue/dequeue work is timed
//!   separately on this host, and the frontend's service time is the
//!   *slowest* shard's (hardware shards run concurrently). The speedup
//!   is the ratio of N-port to 1-port throughput on the same host in
//!   the same run, so host speed divides out, while real regressions —
//!   a routing bug piling flows onto one shard, per-op cost growing
//!   with shard count — drag it down and fail the gate. Each port count
//!   keeps the best of [`REPS`] repetitions: scheduler interruptions
//!   only ever slow a timed loop down, so the maximum is the stable
//!   estimate of what the code can do, and a genuine regression
//!   degrades every repetition.
//!
//! With `--json [PATH]` both metric families are written as a flat JSON
//! object (default `BENCH_shard_throughput.json`) for the regression
//! gate (`check_regression`). Raw single-thread wall-clock simulation
//! speed is printed but never gated (host-dependent).
//!
//! **Experiment E12 — `parallel` mode:** invoked as
//! `shard_throughput parallel`, the same drifting-tag workload is pushed
//! through [`ParallelShardedScheduler`] — one OS thread per port — and
//! the *whole frontend's* wall-clock throughput is measured, so the
//! speedup over the 1-port run is genuine multi-core scaling, not a
//! model. Metrics `parallel_speedup_ports_{2,4,8}` (best of [`REPS`])
//! and `parallel_cores` go into a separate flat-JSON file (default
//! `BENCH_shard_parallel.json`). On a host where
//! `std::thread::available_parallelism()` reports one core the speedups
//! are necessarily ~1.0x and the numbers are **informational only** —
//! CI gates them exclusively on multi-core runners.

use std::time::Instant;

use bench::{eng, json_object, print_table};
use scheduler::{ParallelShardedScheduler, SchedulerConfig, ShardedScheduler};
use tagsort::{PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES};
use traffic::{FlowId, FlowSpec, Packet, Time};

const FLOWS: usize = 64;
const WARMUP: usize = 64;
/// Timed enqueue+dequeue pairs per port, so per-port timing granularity
/// is the same at every port count.
const PAIRS_PER_PORT: usize = 25_000;
/// Timing noise on a loaded host is one-sided (interruptions only slow
/// a loop down), so each port count takes the best of this many
/// repetitions; a genuine regression degrades every repetition.
const REPS: usize = 3;

struct RunResult {
    /// Modeled aggregate pps (cycle accounting, deterministic).
    modeled_pps: f64,
    /// Measured aggregate pps: total ops / slowest shard's elapsed.
    measured_pps: f64,
    /// Raw single-thread simulation speed (informational only).
    wall_pps: f64,
}

/// Steady-state enqueue+dequeue pairs on every port, with each port's
/// work timed separately so concurrent-shard throughput can be measured
/// rather than assumed.
fn run(ports: usize) -> RunResult {
    let flows: Vec<FlowSpec> = (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect();
    let mut fe = ShardedScheduler::new(
        &flows,
        40e9,
        ports,
        SchedulerConfig {
            capacity: 1 << 14,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    // One global arrival stream, bucketed by the frontend's own routing
    // so imbalance from the flow-affinity hash shows up in the timing.
    let mut t = 0.0;
    let mut per_port: Vec<Vec<Packet>> = vec![Vec::new(); ports];
    for seq in 0..((WARMUP + PAIRS_PER_PORT) * ports) as u64 {
        t += 28e-9; // 140 B at 40 Gb/s
        let pkt = Packet {
            flow: FlowId((seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        };
        per_port[fe.port_of(pkt.flow).expect("configured flow")].push(pkt);
    }
    let started = Instant::now();
    let mut total_pairs = 0usize;
    let mut slowest = 0.0f64;
    for (port, arrivals) in per_port.iter().enumerate() {
        let (warm, pairs) = arrivals.split_at(WARMUP.min(arrivals.len()));
        // Warm a backlog so the shard stays busy through the timed loop.
        for &pkt in warm {
            fe.enqueue(pkt).expect("capacity");
        }
        let port_started = Instant::now();
        for &pkt in pairs {
            fe.enqueue(pkt).expect("capacity");
            fe.dequeue_port(port).expect("backlogged");
        }
        slowest = slowest.max(port_started.elapsed().as_secs_f64());
        total_pairs += pairs.len();
    }
    let elapsed = started.elapsed().as_secs_f64();
    RunResult {
        modeled_pps: fe.stats().modeled_packets_per_second(PAPER_CLOCK_HZ),
        measured_pps: 2.0 * total_pairs as f64 / slowest,
        wall_pps: 2.0 * total_pairs as f64 / elapsed,
    }
}

/// Packets handed across a channel per enqueue batch (and served back
/// per port per round) in the parallel measurement — large enough to
/// amortize the handoff, small enough to keep every worker busy.
const PAR_BATCH: usize = 512;

/// E12: the drifting-tag pair workload through the thread-per-shard
/// frontend, timed end to end on the wall clock. Returns aggregate
/// packets/s (enqueues + dequeues, as in the E11 measurement).
fn run_parallel(ports: usize) -> f64 {
    let flows: Vec<FlowSpec> = (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect();
    let mut fe = ParallelShardedScheduler::new(
        &flows,
        40e9,
        ports,
        SchedulerConfig {
            capacity: 1 << 14,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    // The same global arrival stream as the sequential measurement.
    let mut t = 0.0;
    let total = (WARMUP + PAIRS_PER_PORT) * ports;
    let mut arrivals = Vec::with_capacity(total);
    for seq in 0..total as u64 {
        t += 28e-9; // 140 B at 40 Gb/s
        arrivals.push(Packet {
            flow: FlowId((seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(t),
            seq,
        });
    }
    // Warm a backlog so every shard stays busy through the timed loop.
    let (warm, timed) = arrivals.split_at(WARMUP * ports);
    fe.enqueue_batch(warm).expect("capacity");
    let mut ops = 0usize;
    let started = Instant::now();
    for chunk in timed.chunks(PAR_BATCH * ports) {
        fe.enqueue_batch(chunk).expect("capacity");
        // Serve a matching round: every backlogged port pops its share
        // concurrently while the others do the same.
        let served = fe.dequeue_round(PAR_BATCH);
        ops += chunk.len() + served.len();
    }
    ops += fe.drain().len();
    let elapsed = started.elapsed().as_secs_f64();
    ops as f64 / elapsed
}

/// E12 driver: measures wall-clock multi-core speedup of the parallel
/// frontend and writes the `parallel_*` metric family.
fn main_parallel(json_path: Option<String>) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let port_counts = [1usize, 2, 4, 8];
    let mut best = Vec::new();
    for &ports in &port_counts {
        let mut pps = run_parallel(ports);
        for _ in 1..REPS {
            pps = pps.max(run_parallel(ports));
        }
        best.push(pps);
    }
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = vec![("parallel_cores".into(), cores as f64)];
    for (&ports, &pps) in port_counts.iter().zip(&best) {
        let speedup = pps / best[0];
        rows.push(vec![
            format!("{ports}"),
            format!("{}pps", eng(pps)),
            format!("{speedup:.2}x"),
        ]);
        metrics.push((format!("parallel_wall_mpps_ports_{ports}"), pps / 1e6));
        if ports > 1 {
            metrics.push((format!("parallel_speedup_ports_{ports}"), speedup));
        }
    }
    print_table(
        &format!("Thread-per-shard frontend — wall-clock scaling ({cores} core(s))"),
        &["ports", "wall-clock", "speedup"],
        &rows,
    );
    if cores == 1 {
        println!(
            "\nOnly one core available: every worker thread time-slices the\n\
             same CPU, so the speedups above are ~1.0x by construction and\n\
             must be read as informational, not as a regression."
        );
    } else {
        println!(
            "\nSpeedup is the N-port frontend's wall-clock throughput over the\n\
             1-port frontend's in the same run: real multi-core scaling of\n\
             the thread-per-shard workers, including all channel handoff\n\
             costs."
        );
    }
    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.first().is_some_and(|a| a == "parallel");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            if parallel {
                "BENCH_shard_parallel.json".into()
            } else {
                "BENCH_shard_throughput.json".into()
            }
        })
    });
    if parallel {
        return main_parallel(json_path);
    }

    let port_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut modeled_1 = 0.0;
    let mut measured_1 = 0.0;
    for &ports in &port_counts {
        let mut r = run(ports);
        for _ in 1..REPS {
            let again = run(ports);
            if again.measured_pps > r.measured_pps {
                r.measured_pps = again.measured_pps;
            }
            if again.wall_pps > r.wall_pps {
                r.wall_pps = again.wall_pps;
            }
        }
        if ports == 1 {
            modeled_1 = r.modeled_pps;
            measured_1 = r.measured_pps;
        }
        let modeled_speedup = r.modeled_pps / modeled_1;
        let measured_speedup = r.measured_pps / measured_1;
        rows.push(vec![
            format!("{ports}"),
            format!("{}pps", eng(r.modeled_pps)),
            format!("{}b/s", eng(r.modeled_pps * PAPER_MEAN_PACKET_BYTES * 8.0)),
            format!("{modeled_speedup:.2}x"),
            format!("{measured_speedup:.2}x"),
            format!("{}pps", eng(r.wall_pps)),
        ]);
        metrics.push((format!("ports_{ports}_modeled_mpps"), r.modeled_pps / 1e6));
        metrics.push((format!("speedup_ports_{ports}"), modeled_speedup));
        metrics.push((format!("measured_speedup_ports_{ports}"), measured_speedup));
    }
    print_table(
        "Multi-port frontend — aggregate throughput (143.2 MHz/shard)",
        &[
            "ports",
            "modeled",
            "line rate (140 B)",
            "modeled speedup",
            "measured speedup",
            "sim wall-clock",
        ],
        &rows,
    );
    println!(
        "\nModeled speedup is cycle accounting: every shard keeps the single\n\
         circuit's four-cycle slot, so it equals the port count by\n\
         construction. Measured speedup times each shard's work on this\n\
         host and takes the slowest shard as the frontend's service time\n\
         (shards run concurrently in hardware); as a same-host ratio it is\n\
         stable across machines and reflects actual routing balance and\n\
         per-op cost. The wall-clock column is this host simulating all\n\
         shards on one thread — informational, not part of the baseline."
    );

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
