//! **Experiment E11 — multi-port scaling:** aggregate throughput of the
//! sharded frontend at 1, 2, 4, and 8 output ports.
//!
//! Each port replicates the paper's sort/retrieve circuit, so every
//! shard keeps the fixed four-cycle slot no matter how the others are
//! loaded — the frontend's modeled throughput is the sum of its shards'
//! 35.8 Mpps. This experiment drives the packet-level analogue of the
//! drifting tag workload (steady enqueue+dequeue pairs whose finishing
//! tags sweep upward with bounded spread, the Fig. 6 regime) through
//! every port count and reports:
//!
//! * **modeled** aggregate Mpps — per-shard cycle accounting at the
//!   paper's 143.2 MHz clock, deterministic, gated by CI against a
//!   committed baseline;
//! * **wall-clock** simulation Mpps — how fast this host simulates the
//!   frontend, informational only (host-dependent, single-threaded).
//!
//! With `--json [PATH]` the deterministic metrics are also written as a
//! flat JSON object (default `BENCH_shard_throughput.json`) for the
//! regression gate (`check_regression`).

use std::time::Instant;

use bench::{eng, json_object, print_table};
use scheduler::{SchedulerConfig, ShardedScheduler};
use tagsort::{PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES};
use traffic::{FlowId, FlowSpec, Packet, Time};

const FLOWS: usize = 64;
const WARMUP: usize = 64;
const PAIRS: usize = 100_000;

/// Steady-state enqueue+dequeue pairs across all ports; returns
/// (modeled aggregate pps, wall-clock simulated pps).
fn run(ports: usize) -> (f64, f64) {
    let flows: Vec<FlowSpec> = (0..FLOWS)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 7) as f64, 1e6))
        .collect();
    let mut fe = ShardedScheduler::new(
        &flows,
        40e9,
        ports,
        SchedulerConfig {
            capacity: 1 << 14,
            tick_scale: 2000.0,
            ..SchedulerConfig::default()
        },
    );
    let mut t = 0.0;
    let mut seq = 0u64;
    let pkt = |seq: &mut u64, t: &mut f64| {
        *t += 28e-9; // 140 B at 40 Gb/s
        let p = Packet {
            flow: FlowId((*seq % FLOWS as u64) as u32),
            size_bytes: 140,
            arrival: Time(*t),
            seq: *seq,
        };
        *seq += 1;
        p
    };
    // Warm a backlog on every port so each shard stays busy throughout.
    for _ in 0..WARMUP * ports {
        fe.enqueue(pkt(&mut seq, &mut t)).expect("capacity");
    }
    let started = Instant::now();
    for _ in 0..PAIRS {
        fe.enqueue(pkt(&mut seq, &mut t)).expect("capacity");
        fe.dequeue().expect("backlogged");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let wall_pps = 2.0 * PAIRS as f64 / elapsed; // enqueue + dequeue ops
    let modeled_pps = fe.stats().modeled_packets_per_second(PAPER_CLOCK_HZ);
    (modeled_pps, wall_pps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_shard_throughput.json".into())
    });

    let port_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut modeled_1 = 0.0;
    for &ports in &port_counts {
        let (modeled, wall) = run(ports);
        if ports == 1 {
            modeled_1 = modeled;
        }
        let speedup = modeled / modeled_1;
        rows.push(vec![
            format!("{ports}"),
            format!("{}pps", eng(modeled)),
            format!("{}b/s", eng(modeled * PAPER_MEAN_PACKET_BYTES * 8.0)),
            format!("{speedup:.2}x"),
            format!("{}pps", eng(wall)),
        ]);
        metrics.push((format!("ports_{ports}_modeled_mpps"), modeled / 1e6));
        metrics.push((format!("speedup_ports_{ports}"), speedup));
    }
    print_table(
        "Multi-port frontend — modeled aggregate throughput (143.2 MHz/shard)",
        &[
            "ports",
            "modeled",
            "line rate (140 B)",
            "speedup",
            "sim wall-clock",
        ],
        &rows,
    );
    println!(
        "\nEach shard holds the single circuit's four-cycle slot, so the\n\
         modeled aggregate scales linearly with the port count. The wall-\n\
         clock column is this host simulating all shards on one thread —\n\
         informational, not part of the regression baseline."
    );

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
