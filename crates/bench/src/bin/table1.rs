//! **Experiment E1 — Table I:** comparing lookup methods available.
//!
//! Runs an identical tag workload through every method of the paper's
//! Table I and reports the measured worst-case memory accesses per
//! insert and per retrieval, next to the closed-form bound the table
//! quotes. The multi-bit tree must come out with the lowest worst case
//! among the exact methods.

use baselines::{all_methods, MinTagQueue};
use bench::{print_table, tag_workload};

fn measure(method: &mut dyn MinTagQueue, items: &[(tagsort::Tag, tagsort::PacketRef)]) -> [u64; 3] {
    method.reset_stats();
    for &(t, p) in items {
        method.insert(t, p);
    }
    let worst_insert = method.stats().worst_op_accesses();
    method.reset_stats();
    while method.pop_min().is_some() {}
    let worst_pop = method.stats().worst_op_accesses();
    let mean = method.stats().mean_op_accesses().round() as u64;
    [worst_insert, worst_pop, mean]
}

fn main() {
    const TAG_BITS: u32 = 12;
    const N: usize = 2000;
    // Two workloads: a uniform mix and an adversarial one (sparse tags at
    // the top of the range, which is the worst case for the search-model
    // methods and the calendar buckets).
    let uniform = tag_workload(N, TAG_BITS, 1);
    let adversarial: Vec<_> = tag_workload(N, TAG_BITS, 2)
        .into_iter()
        .map(|(t, p)| (tagsort::Tag(t.value() / 64 + 4032), p))
        .collect();

    let mut rows = Vec::new();
    // Fresh instances per workload so warm-state optimizations (e.g. the
    // CAM's floor register) do not leak between measurements.
    for (mut method, mut fresh) in all_methods(TAG_BITS).into_iter().zip(all_methods(TAG_BITS)) {
        let u = measure(method.as_mut(), &uniform);
        let a = measure(fresh.as_mut(), &adversarial);
        rows.push(vec![
            method.name().to_string(),
            method.model().to_string(),
            method.complexity().to_string(),
            u[0].max(a[0]).to_string(),
            u[1].max(a[1]).to_string(),
            u[2].max(a[2]).to_string(),
            if method.is_exact() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "Table I — lookup methods (12-bit tags, 2000 entries, measured)",
        &[
            "method",
            "model",
            "paper bound",
            "worst insert",
            "worst retrieve",
            "mean/op",
            "exact order",
        ],
        &rows,
    );
    println!(
        "\nPaper's conclusion to reproduce: the multi-bit tree performs lookups\n\
         \"with the lowest complexity compared to all the other options\" while\n\
         conforming to the sort model (fixed-time retrieval of the minimum)."
    );
}
