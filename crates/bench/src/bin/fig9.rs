//! **Experiment E5 — Figs. 9 & 10:** the four-cycle linked-list insert
//! and the empty-list bookkeeping.
//!
//! Replays the paper's worked example (inserting tag 16 between 15 and
//! 17) against the cycle-accurate tag storage memory and prints the
//! exact read/write schedule, then demonstrates the Fig. 10 state: the
//! initialization counter, the sorted list, and the empty list sharing
//! one memory.

use bench::print_table;
use tagsort::{Geometry, PacketRef, Tag, TagStore};

fn main() {
    // --- Fig. 9: the 4-cycle insert -------------------------------------
    let mut store = TagStore::with_geometry(Geometry::paper(), 16);
    let a15 = store.insert(None, Tag(15), PacketRef(0)).expect("space");
    store
        .insert(Some(a15), Tag(17), PacketRef(1))
        .expect("space");

    store.enable_tracing();
    let cycles_before = store.cycles();
    let stats_before = store.sram_stats();
    store
        .insert(Some(a15), Tag(16), PacketRef(2))
        .expect("space");
    let stats_after = store.sram_stats();
    println!("cycle-accurate SRAM schedule of the insert:");
    for event in store.take_trace() {
        println!("  {event}");
    }

    print_table(
        "Fig. 9 — inserting tag 16 after tag 15",
        &["quantity", "value"],
        &[
            vec![
                "cycles consumed".into(),
                store.cycles().since(cycles_before).to_string(),
            ],
            vec![
                "reads".into(),
                (stats_after.reads - stats_before.reads).to_string(),
            ],
            vec![
                "writes".into(),
                (stats_after.writes - stats_before.writes).to_string(),
            ],
            vec![
                "list contents".into(),
                store
                    .iter_sorted()
                    .map(|(t, _)| t.value().to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
            ],
        ],
    );

    // --- Fig. 10: empty list before the counter exhausts ----------------
    // Twelve locations; five live links, four served (now on the empty
    // list), three never used — the exact state of the figure.
    let mut store = TagStore::with_geometry(Geometry::paper(), 12);
    let mut prev = None;
    for (i, t) in [2u32, 4, 6, 9, 11, 14, 15, 20, 22].iter().enumerate() {
        prev = Some(
            store
                .insert(prev, Tag(*t), PacketRef(i as u32))
                .expect("space"),
        );
    }
    for _ in 0..4 {
        store.pop_min().expect("non-empty");
    }
    print_table(
        "Fig. 10 — memory state before the init counter reaches capacity",
        &["quantity", "value"],
        &[
            vec!["capacity".into(), store.capacity().to_string()],
            vec!["live links (sorted list)".into(), store.len().to_string()],
            vec![
                "free links (empty list + unused)".into(),
                store.free_links().to_string(),
            ],
            vec![
                "sorted list".into(),
                store
                    .iter_sorted()
                    .map(|(t, _)| t.value().to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
            ],
        ],
    );

    // --- Simultaneous insert + pop ---------------------------------------
    let before = store.cycles();
    let sb = store.sram_stats();
    // Insert 12 while the minimum (11) departs, in one slot.
    let head = store.head_addr().expect("head");
    let (_, popped) = store
        .insert_and_pop(Some(head), Tag(12), PacketRef(99))
        .expect("space");
    let sa = store.sram_stats();
    print_table(
        "§III-C — simultaneous store + serve in one slot",
        &["quantity", "value"],
        &[
            vec![
                "popped".into(),
                popped.map(|(t, _, _)| t.to_string()).unwrap_or_default(),
            ],
            vec!["cycles".into(), store.cycles().since(before).to_string()],
            vec!["reads".into(), (sa.reads - sb.reads).to_string()],
            vec!["writes".into(), (sa.writes - sb.writes).to_string()],
            vec![
                "list after".into(),
                store
                    .iter_sorted()
                    .map(|(t, _)| t.value().to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
            ],
        ],
    );

    println!(
        "\nEvery operation above fits the paper's fixed four-clock-cycle slot\n\
         (two reads + two writes on the single-port SRAM); the port arbitration\n\
         model would fault the run if the schedule were ever violated."
    );
}
