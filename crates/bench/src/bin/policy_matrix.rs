//! **Experiment E17 — programmable-policy matrix:** every rank policy in
//! the library, on every sorting backend, as a deterministic regression
//! gate.
//!
//! Two deterministic scenarios, both pure functions of seeded workloads:
//!
//! * **Policy × backend sweep** — each policy name in
//!   [`AnyPolicy::NAMES`] drives the same seeded three-flow mix through
//!   the trie circuit, the FFS fastpath, and the software heap. Per
//!   policy the export carries a `policy_<name>_backend_agreement` bit
//!   (1.0 only when all three backends produce the identical departure
//!   sequence), the served-packet count, and lower-is-better
//!   `ceil_policy_<name>_mean_delay_ms` / `ceil_policy_<name>_p99_delay_ms`
//!   ceilings over the simulated queueing delay (mean, and exact
//!   nearest-rank p99). Delay here is simulated time (departure minus
//!   arrival), so every figure is bit-stable across hosts.
//! * **Admission under overload** — a 2.7×-oversubscribed mix into a
//!   deliberately tiny buffer with [`DropPolicy::CountAndContinue`],
//!   once per admission policy. Tail-drop refuses the newcomer
//!   regardless of rank; rank-aware push-out evicts the worst-ranked
//!   resident instead, so the weight-8 heavyweight must keep at least
//!   its tail-drop share:
//!   `admission_pushout_heavy_served / admission_taildrop_heavy_served`
//!   is gated as `admission_pushout_retention`. The WRED ramp
//!   ([`AdmissionPolicy::wred`], 50→90% occupancy at 200‰) sheds the
//!   same worst-ranked backlog early with a deterministic coin and is
//!   gated the same way as `admission_wred_retention`.
//!
//! With `--json [PATH]` everything is written as a flat JSON object
//! (default `BENCH_policies.json`) for `check_regression`.

use bench::{json_object, print_table};
use fairq::{AnyPolicy, RankPolicy};
use fastpath::FfsSorter;
use scheduler::{
    AdmissionPolicy, DropPolicy, HwLinkSim, HwScheduler, SchedulerConfig, SchedulerError,
};
use tagsort::{Geometry, HeapSorter, SortBackend, SortRetrieveCircuit};
use traffic::{generate, FlowId, FlowSpec, Packet, SizeDist};

const RATE: f64 = 1e6;
const HORIZON_S: f64 = 0.8;
const SEED: u64 = 47;

/// The three-flow reference mix used by the policy conformance tests:
/// weights 4/1/2 over CBR-ish fixed sizes and an IMIX middle flow.
fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 4.0, 300_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 500_000.0).size(SizeDist::Imix),
        FlowSpec::new(FlowId(2), 2.0, 200_000.0).size(SizeDist::Fixed(700)),
    ]
}

fn config(proto: &AnyPolicy, capacity: usize, admission: AdmissionPolicy) -> SchedulerConfig {
    SchedulerConfig {
        geometry: Geometry::new(4, 5),
        tick_scale: proto.tick_scale(RATE),
        capacity,
        admission,
        ..SchedulerConfig::default()
    }
}

/// A departure, keyed for exact cross-backend comparison: flow, seq, and
/// the service-finish time in raw bits.
type Dep = (u32, u64, u64);

fn departures<B: SortBackend>(
    fl: &[FlowSpec],
    proto: &AnyPolicy,
    trace: &[Packet],
) -> (Vec<Dep>, f64, f64) {
    let hw = HwScheduler::<B, AnyPolicy>::with_backend_and_policy(
        fl,
        RATE,
        config(proto, 1 << 12, AdmissionPolicy::TailDrop),
        proto,
    );
    let deps = HwLinkSim::new(RATE, hw)
        .run(trace)
        .expect("seeded trace fits the buffers");
    let mut delays_s: Vec<f64> = Vec::with_capacity(deps.len());
    let keyed = deps
        .iter()
        .map(|d| {
            delays_s.push(d.finish.0 - d.packet.arrival.0);
            (d.packet.flow.0, d.packet.seq, d.finish.0.to_bits())
        })
        .collect::<Vec<_>>();
    let mean_delay_ms = 1e3 * delays_s.iter().sum::<f64>() / delays_s.len().max(1) as f64;
    // Exact empirical p99 (nearest-rank on the sorted simulated delays):
    // the tail ceiling the campaign gates alongside the mean.
    let p99_delay_ms = if delays_s.is_empty() {
        0.0
    } else {
        let idx = (delays_s.len() - 1) * 99 / 100;
        let (_, p99, _) = delays_s.select_nth_unstable_by(idx, f64::total_cmp);
        1e3 * *p99
    };
    (keyed, mean_delay_ms, p99_delay_ms)
}

/// The policy × backend sweep: agreement bits, served counts, and mean
/// simulated-delay ceilings per policy.
fn policy_sweep(fl: &[FlowSpec], trace: &[Packet]) -> (Vec<(String, f64)>, Vec<Vec<String>>) {
    let mut metrics = Vec::new();
    let mut rows = Vec::new();
    for name in AnyPolicy::NAMES {
        let proto = AnyPolicy::by_name(name).expect("NAMES entries resolve");
        let (trie, delay_ms, p99_ms) = departures::<SortRetrieveCircuit>(fl, &proto, trace);
        let (ffs, _, _) = departures::<FfsSorter>(fl, &proto, trace);
        let (heap, _, _) = departures::<HeapSorter>(fl, &proto, trace);
        let agree = if trie == ffs && trie == heap {
            1.0
        } else {
            0.0
        };
        // '+' is not a JSON-key-friendly metric name: fifo+ → fifo_plus.
        let key = name.replace('+', "_plus");
        metrics.push((format!("policy_{key}_backend_agreement"), agree));
        metrics.push((format!("policy_{key}_served"), trie.len() as f64));
        metrics.push((format!("ceil_policy_{key}_mean_delay_ms"), delay_ms));
        metrics.push((format!("ceil_policy_{key}_p99_delay_ms"), p99_ms));
        rows.push(vec![
            name.to_string(),
            format!("{}", trie.len()),
            if agree == 1.0 {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{delay_ms:.3}"),
            format!("{p99_ms:.3}"),
        ]);
    }
    (metrics, rows)
}

/// A 2.7×-oversubscribed mix: one weight-8 heavyweight against two
/// weight-1 background flows, each offering ~0.9× the link rate alone.
/// Under WFQ the heavyweight's GPS finish tags are the smallest in the
/// buffer, so rank-aware push-out keeps admitting it by evicting
/// background residents where tail-drop would refuse it outright.
fn overload_flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec::new(FlowId(0), 8.0, 900_000.0).size(SizeDist::Fixed(140)),
        FlowSpec::new(FlowId(1), 1.0, 900_000.0).size(SizeDist::Fixed(700)),
        FlowSpec::new(FlowId(2), 1.0, 900_000.0).size(SizeDist::Fixed(700)),
    ]
}

/// One overload run: the oversubscribed mix against a 32-slot buffer,
/// drops counted, returning (heavy-flow served, total served, drops).
fn overload_run(fl: &[FlowSpec], trace: &[Packet], admission: AdmissionPolicy) -> (f64, f64, f64) {
    let proto = AnyPolicy::default();
    let hw = HwScheduler::<SortRetrieveCircuit, AnyPolicy>::with_backend_and_policy(
        fl,
        RATE,
        config(&proto, 32, admission),
        &proto,
    );
    let mut sim = HwLinkSim::new(RATE, hw).with_drop_policy(DropPolicy::CountAndContinue);
    let deps = sim
        .run(trace)
        .unwrap_or_else(|e: SchedulerError| panic!("overload run aborted: {e}"));
    let heavy = deps.iter().filter(|d| d.packet.flow == FlowId(0)).count();
    (heavy as f64, deps.len() as f64, sim.drops() as f64)
}

/// Tail-drop vs rank-aware push-out vs the WRED early-eviction ramp
/// under the same overload. WRED sheds worst-ranked backlog *before*
/// the buffer hard-fills, so like push-out the heavyweight keeps at
/// least its tail-drop share; its deterministic counter-keyed coin
/// makes the served counts exact gates, not noisy estimates.
fn admission_contrast() -> (Vec<(String, f64)>, Vec<Vec<String>>) {
    let fl = overload_flows();
    let trace = generate(&fl, 0.2, SEED);
    let (td_heavy, td_total, td_drops) = overload_run(&fl, &trace, AdmissionPolicy::TailDrop);
    let (po_heavy, po_total, po_drops) = overload_run(&fl, &trace, AdmissionPolicy::PushOut);
    let (wr_heavy, wr_total, wr_drops) = overload_run(&fl, &trace, AdmissionPolicy::wred());
    let metrics = vec![
        ("admission_taildrop_heavy_served".into(), td_heavy),
        ("admission_pushout_heavy_served".into(), po_heavy),
        ("admission_pushout_retention".into(), po_heavy / td_heavy),
        ("admission_wred_heavy_served".into(), wr_heavy),
        ("admission_wred_retention".into(), wr_heavy / td_heavy),
        ("ceil_admission_taildrop_drops".into(), td_drops),
        ("ceil_admission_pushout_drops".into(), po_drops),
        ("ceil_admission_wred_drops".into(), wr_drops),
    ];
    let rows = vec![
        vec![
            "tail-drop".into(),
            format!("{td_heavy:.0}"),
            format!("{td_total:.0}"),
            format!("{td_drops:.0}"),
        ],
        vec![
            "push-out".into(),
            format!("{po_heavy:.0}"),
            format!("{po_total:.0}"),
            format!("{po_drops:.0}"),
        ],
        vec![
            "wred".into(),
            format!("{wr_heavy:.0}"),
            format!("{wr_total:.0}"),
            format!("{wr_drops:.0}"),
        ],
    ];
    (metrics, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_policies.json".into())
    });

    let fl = flows();
    let trace = generate(&fl, HORIZON_S, SEED);
    let (mut metrics, rows) = policy_sweep(&fl, &trace);
    let (adm_metrics, adm_rows) = admission_contrast();
    metrics.extend(adm_metrics);

    print_table(
        &format!(
            "Policy × backend matrix — seeded three-flow mix ({} pkts)",
            trace.len()
        ),
        &[
            "policy",
            "served",
            "backends agree",
            "mean delay ms",
            "p99 delay ms",
        ],
        &rows,
    );
    println!();
    print_table(
        "Admission under overload — 32-slot buffer, drops counted",
        &["admission", "heavy served", "total served", "drops"],
        &adm_rows,
    );
    println!(
        "\nEvery figure is a pure function of the seeded workload (delay is\n\
         simulated time), so the agreement bits, served counts, and ceil_*\n\
         ceilings are gated exactly, not as noisy host measurements."
    );
    for (key, value) in &metrics {
        println!("  {key} = {value:.4}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_object(&metrics)).expect("write json");
        println!("\nwrote {path}");
    }
}
