//! Exports the matching circuits as structural Verilog — the round trip
//! back toward the paper's VHDL/Synopsys flow. Pipe to a file and feed
//! to yosys/verilator for an independent check of the gate counts.
//!
//! ```sh
//! cargo run -p bench --bin rtl_export > matchers.v
//! ```

use matcher::{MatcherCircuit, MatcherKind};

fn main() {
    for kind in MatcherKind::ALL {
        let circuit = MatcherCircuit::build(kind, 16);
        let module = kind.name().replace([' ', '&', '-'], "_").replace("__", "_");
        let name = format!("matcher_{}_16", module.trim_matches('_'));
        print!("{}", circuit.netlist_verilog(&name));
        println!();
    }
    eprintln!(
        "emitted the five 16-bit matching circuits; inputs are in0..in15 \
         (occupancy, LSB first) then in16..in19 (search literal), outputs \
         out0..out15 (primary one-hot) then out16..out31 (backup one-hot)."
    );
}
