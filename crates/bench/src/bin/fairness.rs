//! **Experiment E10 — §I/§II motivation:** fair queueing vs round robin
//! delay bounds.
//!
//! The paper's case for building WFQ hardware at all: round robin "cannot
//! provide for effective bounded delays" for variable-size packets, while
//! WFQ "approximates GPS within one packet transmission time regardless
//! of the arrival patterns". This binary runs every scheduler over the
//! same mixed workload and reports per-flow worst-case delay, the GPS
//! lag, and weighted fairness.

use bench::{eng, print_table};
use fairq::{
    metrics, Departure, Drr, Fbfq, Fifo, LinkSim, Mdrr, Scfq, Scheduler, Sfq, StratifiedRr, Wf2q,
    Wf2qPlus, Wfq, Wrr,
};
use traffic::{generate, ArrivalProcess, FlowId, FlowSpec, Packet, SizeDist};

fn flows() -> Vec<FlowSpec> {
    vec![
        // A weighted VoIP-like flow with small packets needing low delay.
        FlowSpec::new(FlowId(0), 4.0, 400_000.0)
            .size(SizeDist::Fixed(140))
            .arrivals(ArrivalProcess::Cbr),
        // A bursty data flow with big packets.
        FlowSpec::new(FlowId(1), 1.0, 1_200_000.0)
            .size(SizeDist::Bimodal {
                small: 40,
                large: 1500,
                p_small: 0.2,
            })
            .arrivals(ArrivalProcess::OnOff {
                on_mean_s: 0.03,
                off_mean_s: 0.03,
            }),
        // Steady IMIX background.
        FlowSpec::new(FlowId(2), 2.0, 800_000.0)
            .size(SizeDist::Imix)
            .arrivals(ArrivalProcess::Poisson),
    ]
}

fn run(
    name: &str,
    mut sim: LinkSim<Box<dyn Scheduler>>,
    fl: &[FlowSpec],
    trace: &[Packet],
    rate: f64,
) -> Vec<String> {
    let deps: Vec<Departure> = sim.run(trace);
    score(name, &deps, fl, trace, rate)
}

fn score(
    name: &str,
    deps: &[Departure],
    fl: &[FlowSpec],
    trace: &[Packet],
    rate: f64,
) -> Vec<String> {
    let report = metrics::analyze(fl, trace, deps);
    let lag = metrics::gps_lag(fl, trace, deps, rate);
    let lmax_over_r = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max) / rate;
    // Weighted shares over the continuously backlogged first second.
    let mut bytes = vec![0u64; fl.len()];
    for d in deps.iter().filter(|d| d.finish.seconds() <= 1.0) {
        // (departures within the saturated first second)
        bytes[d.packet.flow.0 as usize] += u64::from(d.packet.size_bytes);
    }
    let shares: Vec<f64> = bytes
        .iter()
        .zip(fl)
        .map(|(&b, f)| b as f64 / f.weight)
        .collect();
    vec![
        name.to_string(),
        format!("{}s", eng(report[0].max_delay_s)),
        format!("{}s", eng(report[1].max_delay_s)),
        format!("{}s", eng(report[2].max_delay_s)),
        format!("{}s", eng(lag)),
        format!("{:.2}x", lag / lmax_over_r),
        format!("{:.3}", metrics::jain_index(&shares)),
    ]
}

fn main() {
    let fl = flows();
    let rate = 2.0e6; // oversubscribed: 2.4 Mb/s offered on a 2 Mb/s link
    let trace = generate(&fl, 2.0, 21);
    println!(
        "workload: {} packets over 2 s, 3 flows, link {}b/s",
        trace.len(),
        eng(rate)
    );

    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("FIFO", Box::new(Fifo::new())),
        ("WRR", Box::new(Wrr::new(&fl))),
        ("DRR", Box::new(Drr::new(&fl, 1500.0))),
        (
            "MDRR (LLQ=flow 0)",
            Box::new(Mdrr::new(&fl, 1500.0, FlowId(0))),
        ),
        ("SRR", Box::new(StratifiedRr::new(&fl))),
        ("FBFQ", Box::new(Fbfq::new(&fl, rate, 1500.0))),
        ("SCFQ", Box::new(Scfq::new(&fl))),
        ("SFQ", Box::new(Sfq::new(&fl))),
        ("WFQ", Box::new(Wfq::new(&fl, rate))),
        ("WF2Q", Box::new(Wf2q::new(&fl, rate))),
        ("WF2Q+", Box::new(Wf2qPlus::new(&fl))),
    ];
    let mut rows = Vec::new();
    for (name, sched) in schedulers {
        rows.push(run(name, LinkSim::new(rate, sched), &fl, &trace, rate));
    }
    // The same WFQ policy through the full hardware pipeline (Fig. 1):
    // quantized tags, the sort/retrieve circuit, and the shared buffer.
    {
        use scheduler::{HwLinkSim, HwScheduler, SchedulerConfig};
        use tagsort::Geometry;
        let hw = HwScheduler::new(
            &fl,
            rate,
            SchedulerConfig {
                geometry: Geometry::new(4, 5),
                tick_scale: 30.0,
                capacity: 1 << 14,
                ..SchedulerConfig::default()
            },
        );
        let deps = HwLinkSim::new(rate, hw).run(&trace).expect("hardware path");
        rows.push(score("WFQ (hw circuit)", &deps, &fl, &trace, rate));
    }
    print_table(
        "E10 — delay bounds and fairness across schedulers",
        &[
            "scheduler",
            "voip max delay",
            "bursty max delay",
            "imix max delay",
            "GPS lag",
            "lag / (Lmax/R)",
            "Jain (weighted)",
        ],
        &rows,
    );
    // --- End to end: the same story across three hops --------------------
    {
        use fairq::{end_to_end_delays, pg_end_to_end_bound, NetworkSim};
        use traffic::TokenBucket;
        let hop_rates = [rate, rate, rate];
        let mut rows = Vec::new();
        for name in ["FIFO", "WFQ"] {
            let mut net = NetworkSim::new();
            for _ in 0..hop_rates.len() {
                match name {
                    "FIFO" => net.add_hop(rate, Fifo::new()),
                    _ => net.add_hop(rate, Wfq::new(&fl, rate)),
                };
            }
            let deps = net.run(&trace);
            let delays = end_to_end_delays(&trace, &deps);
            let worst_voip = trace
                .iter()
                .zip(&delays)
                .filter(|(p, _)| p.flow == FlowId(0))
                .map(|(_, d)| *d)
                .fold(0.0, f64::max);
            rows.push(vec![name.to_string(), format!("{}s", eng(worst_voip))]);
        }
        let g = metrics::guaranteed_rate(&fl, FlowId(0), rate);
        let bucket = TokenBucket::fit(&trace, FlowId(0), fl[0].rate_bps).expect("voip packets");
        let lmax = trace.iter().map(|p| p.size_bits()).fold(0.0, f64::max);
        let bound = pg_end_to_end_bound(bucket.burst_bits(), g, 140.0 * 8.0, lmax, &hop_rates);
        rows.push(vec![
            "PG end-to-end bound (WFQ)".into(),
            format!("{}s", eng(bound)),
        ]);
        print_table(
            "E10b — VoIP worst end-to-end delay across 3 hops",
            &["path", "worst delay"],
            &rows,
        );
    }

    println!(
        "\nShape to reproduce: WFQ and WF2Q keep the GPS lag within one maximum\n\
         packet transmission time (ratio <= 1, the Parekh-Gallager bound); the\n\
         self-clocked family lands within a small constant of it; FIFO and the\n\
         round-robin family blow the VoIP flow's worst-case delay up by an\n\
         order of magnitude under bursty cross-traffic."
    );
}
