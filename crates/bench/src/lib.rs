//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md for the index).
//!
//! Each experiment is a binary under `src/bin/` printing the same rows or
//! series the paper reports; the Criterion benches under `benches/`
//! measure the corresponding wall-clock costs. This library holds what
//! they share: table rendering, deterministic workloads, and common
//! constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tagsort::{PacketRef, Tag};

/// Random-but-reproducible tag workload: `n` (tag, payload) pairs over a
/// `2^tag_bits` space, xorshift-generated from `seed`.
pub fn tag_workload(n: usize, tag_bits: u32, seed: u64) -> Vec<(Tag, PacketRef)> {
    let mut state = seed | 1;
    let mask = (1u64 << tag_bits) - 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (Tag((state & mask) as u32), PacketRef(i as u32))
        })
        .collect()
}

/// A monotone-window workload mimicking WFQ tag arrivals: tags drift
/// upward with bounded spread, like the Fig. 6 distribution.
pub fn drifting_workload(n: usize, tag_bits: u32, spread: u32, seed: u64) -> Vec<(Tag, PacketRef)> {
    let mut state = seed | 1;
    let space = 1u64 << tag_bits;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let base = (i as u64 * (space - u64::from(spread))) / n as u64;
            let tag = base + (state % u64::from(spread));
            (Tag((tag % space) as u32), PacketRef(i as u32))
        })
        .collect()
}

/// Renders an aligned ASCII table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with engineering-style precision.
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x.abs() >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x.abs() >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Renders a horizontal ASCII bar chart (for figure-shaped outputs).
pub fn print_bars(title: &str, series: &[(String, f64)], unit: &str) {
    println!("\n== {title} ==");
    let max = series.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in series {
        let bar_len = if max > 0.0 {
            ((value / max) * 50.0).round() as usize
        } else {
            0
        };
        println!(
            "{:<label_w$}  {:>10}  {}",
            label,
            format!("{} {unit}", eng(*value)),
            "#".repeat(bar_len.max(1)),
        );
    }
}

/// Renders a flat JSON object of numeric metrics, keys in the given
/// order. The machine-readable face of a bench run: CI commits one of
/// these as a baseline and [`parse_json_numbers`] reads both sides back
/// for the regression gate.
pub fn json_object(pairs: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        assert!(
            k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "metric key {k:?} must be a [A-Za-z0-9_] slug"
        );
        assert!(v.is_finite(), "metric {k} is not finite");
        s.push_str(&format!("  \"{k}\": {v}"));
        s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    s.push_str("}\n");
    s
}

/// Parses the flat `{"key": number, ...}` objects [`json_object`] emits
/// (whitespace-insensitive; no nesting, no string values).
///
/// Returns `None` if the text is not such an object.
pub fn parse_json_numbers(text: &str) -> Option<Vec<(String, f64)>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
    let mut out = Vec::new();
    if body.is_empty() {
        return Some(out);
    }
    for entry in body.split(',') {
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value: f64 = value.trim().parse().ok()?;
        out.push((key.to_string(), value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let pairs = vec![
            ("mpps_1_port".to_string(), 35.8),
            ("speedup_ports_4".to_string(), 4.0),
        ];
        let text = json_object(&pairs);
        assert_eq!(parse_json_numbers(&text), Some(pairs));
        assert_eq!(parse_json_numbers("{}"), Some(vec![]));
        assert_eq!(parse_json_numbers("not json"), None);
        assert_eq!(parse_json_numbers("{\"a\": \"str\"}"), None);
    }

    #[test]
    #[should_panic(expected = "slug")]
    fn json_rejects_non_slug_keys() {
        let _ = json_object(&[("bad key".to_string(), 1.0)]);
    }

    #[test]
    fn workloads_are_deterministic_and_in_range() {
        let a = tag_workload(100, 12, 42);
        let b = tag_workload(100, 12, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|(t, _)| t.value() < 4096));
        let c = drifting_workload(100, 12, 256, 42);
        assert!(c.iter().all(|(t, _)| t.value() < 4096));
    }

    #[test]
    fn drifting_workload_drifts() {
        let w = drifting_workload(1000, 12, 128, 7);
        let first_quarter_max = w[..250].iter().map(|(t, _)| t.value()).max().unwrap();
        let last_quarter_min = w[750..].iter().map(|(t, _)| t.value()).min().unwrap();
        assert!(
            last_quarter_min > first_quarter_max,
            "{last_quarter_min} vs {first_quarter_max}"
        );
    }

    #[test]
    fn eng_formats() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1234.0), "1.23k");
        assert_eq!(eng(35_800_000.0), "35.80M");
        assert_eq!(eng(40.1e9), "40.10G");
        assert_eq!(eng(0.25), "0.2500");
    }
}
