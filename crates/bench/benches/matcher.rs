//! Wall-clock companion to experiments E2/E3 (Figs. 7–8): elaboration
//! and gate-level evaluation cost of the five matcher designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use matcher::{MatcherCircuit, MatcherKind};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_build_16bit");
    for kind in MatcherKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(MatcherCircuit::build(k, 16)));
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_evaluate_16bit");
    for kind in MatcherKind::ALL {
        let circuit = MatcherCircuit::build(kind, 16);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &circuit,
            |b, circuit| {
                let mut v: u64 = 0xace1;
                b.iter(|| {
                    v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    let word = v & 0xffff;
                    let lit = (v >> 16) as u32 % 16;
                    black_box(circuit.evaluate(word, lit))
                });
            },
        );
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    c.bench_function("matcher_reference_model_16bit", |b| {
        let mut v: u64 = 0xace1;
        b.iter(|| {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let word = v & 0xffff;
            let lit = (v >> 16) as u32 % 16;
            black_box(matcher::reference::closest_match(word, 16, lit))
        });
    });
}

criterion_group!(benches, bench_build, bench_evaluate, bench_reference);
criterion_main!(benches);
