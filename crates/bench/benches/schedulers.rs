//! Wall-clock companion to experiment E10: per-packet software cost of
//! every scheduler in the family — the processing burden the paper's
//! hardware removes from the data path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fairq::{
    Cbq, ClassMap, Drr, Fbfq, Fifo, HierarchicalWf2q, Mdrr, Scfq, Scheduler, Sfq, StratifiedRr,
    Wf2q, Wf2qPlus, Wfq, Wrr,
};
use traffic::{FlowId, FlowSpec, Packet, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6))
        .collect()
}

fn class_map(n: usize) -> ClassMap {
    ClassMap::new((0..n).map(|i| i % 4).collect(), vec![8.0, 4.0, 2.0, 1.0])
}

type Factory = Box<dyn Fn() -> Box<dyn Scheduler>>;

fn bench_schedulers(c: &mut Criterion) {
    const FLOWS: usize = 64;
    let fl = flows(FLOWS);
    let rate = 1e9;
    let make: Vec<(&str, Factory)> = vec![
        (
            "fifo",
            Box::new({
                let _fl = fl.clone();
                move || Box::new(Fifo::new())
            }),
        ),
        (
            "wrr",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Wrr::new(&fl))
            }),
        ),
        (
            "drr",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Drr::new(&fl, 1500.0))
            }),
        ),
        (
            "mdrr",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Mdrr::new(&fl, 1500.0, FlowId(0)))
            }),
        ),
        (
            "srr",
            Box::new({
                let fl = fl.clone();
                move || Box::new(StratifiedRr::new(&fl))
            }),
        ),
        (
            "fbfq",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Fbfq::new(&fl, rate, 1500.0))
            }),
        ),
        (
            "scfq",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Scfq::new(&fl))
            }),
        ),
        (
            "sfq",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Sfq::new(&fl))
            }),
        ),
        (
            "wfq",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Wfq::new(&fl, rate))
            }),
        ),
        (
            "wf2q",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Wf2q::new(&fl, rate))
            }),
        ),
        (
            "wf2q+",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Wf2qPlus::new(&fl))
            }),
        ),
        (
            "h-wf2q+",
            Box::new({
                let fl = fl.clone();
                move || Box::new(HierarchicalWf2q::new(&fl, class_map(FLOWS)))
            }),
        ),
        (
            "cbq",
            Box::new({
                let fl = fl.clone();
                move || Box::new(Cbq::new(&fl, class_map(FLOWS), 1500.0))
            }),
        ),
    ];
    let mut group = c.benchmark_group("scheduler_packet_cost");
    group.throughput(Throughput::Elements(1));
    for (name, factory) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &factory, |b, factory| {
            let mut s = factory();
            let mut t = 0.0;
            let mut seq = 0u64;
            // Warm backlog.
            for _ in 0..128 {
                t += 1e-6;
                s.on_arrival(Packet {
                    flow: FlowId((seq % FLOWS as u64) as u32),
                    size_bytes: 300 + (seq as u32 % 1200),
                    arrival: Time(t),
                    seq,
                });
                seq += 1;
            }
            b.iter(|| {
                t += 1e-6;
                s.on_arrival(Packet {
                    flow: FlowId((seq % FLOWS as u64) as u32),
                    size_bytes: 300 + (seq as u32 % 1200),
                    arrival: Time(t),
                    seq,
                });
                seq += 1;
                black_box(s.select(Time(t)).expect("backlogged"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
