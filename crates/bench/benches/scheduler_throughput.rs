//! Wall-clock companion to experiment E9: end-to-end scheduler
//! enqueue+dequeue throughput (the full Fig. 1 pipeline per packet),
//! and the software scheduler family for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fairq::{Scheduler, Wfq};
use scheduler::{HwScheduler, SchedulerConfig};
use traffic::{FlowId, FlowSpec, Packet, Time};

fn flows(n: usize) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec::new(FlowId(i as u32), 1.0 + (i % 5) as f64, 1e6))
        .collect()
}

fn bench_hw_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_scheduler_packet");
    group.throughput(Throughput::Elements(1));
    for sessions in [16usize, 256, 4096] {
        let fl = flows(sessions);
        group.bench_with_input(BenchmarkId::new("sessions", sessions), &fl, |b, fl| {
            let mut s = HwScheduler::new(
                fl,
                40e9,
                SchedulerConfig {
                    tick_scale: 2000.0,
                    capacity: 1 << 14,
                    ..SchedulerConfig::default()
                },
            );
            let mut t = 0.0;
            let mut seq = 0u64;
            for _ in 0..128 {
                t += 28e-9;
                s.enqueue(Packet {
                    flow: FlowId((seq % fl.len() as u64) as u32),
                    size_bytes: 140,
                    arrival: Time(t),
                    seq,
                })
                .unwrap();
                seq += 1;
            }
            b.iter(|| {
                t += 28e-9;
                s.enqueue(Packet {
                    flow: FlowId((seq % fl.len() as u64) as u32),
                    size_bytes: 140,
                    arrival: Time(t),
                    seq,
                })
                .unwrap();
                seq += 1;
                black_box(s.dequeue().unwrap());
            });
        });
    }
    group.finish();
}

fn bench_software_wfq(c: &mut Criterion) {
    c.bench_function("software_wfq_packet", |b| {
        let fl = flows(256);
        let mut s = Wfq::new(&fl, 40e9);
        let mut t = 0.0;
        let mut seq = 0u64;
        for _ in 0..128 {
            t += 28e-9;
            s.on_arrival(Packet {
                flow: FlowId((seq % 256) as u32),
                size_bytes: 140,
                arrival: Time(t),
                seq,
            });
            seq += 1;
        }
        b.iter(|| {
            t += 28e-9;
            s.on_arrival(Packet {
                flow: FlowId((seq % 256) as u32),
                size_bytes: 140,
                arrival: Time(t),
                seq,
            });
            seq += 1;
            black_box(s.select(Time(t)).unwrap());
        });
    });
}

criterion_group!(benches, bench_hw_scheduler, bench_software_wfq);
criterion_main!(benches);
