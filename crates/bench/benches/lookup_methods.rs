//! Wall-clock companion to experiment E1 (Table I): insert + pop-min
//! throughput of every lookup method on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use baselines::all_methods;
use bench::tag_workload;

fn bench_methods(c: &mut Criterion) {
    let items = tag_workload(1024, 12, 7);
    let mut group = c.benchmark_group("table1_lookup_methods");
    for method_idx in 0..all_methods(12).len() {
        let name = all_methods(12)[method_idx].name().to_string();
        group.bench_with_input(
            BenchmarkId::new("insert_pop_1024", name),
            &method_idx,
            |b, &idx| {
                b.iter(|| {
                    let mut m = all_methods(12).swap_remove(idx);
                    for &(t, p) in &items {
                        m.insert(black_box(t), black_box(p));
                    }
                    while let Some(x) = m.pop_min() {
                        black_box(x);
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
