//! Wall-clock companion to experiments E5/E7 and the branching ablation:
//! sort/retrieve circuit operation cost across geometries and occupancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::drifting_workload;
use tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};

fn bench_insert_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorter_insert_pop");
    group.throughput(Throughput::Elements(2048));
    for (label, geometry) in [
        ("paper_12bit_bf16", Geometry::paper()),
        ("wide_15bit_bf32", Geometry::paper_wide()),
        ("binary_12bit_bf2", Geometry::new(1, 12)),
        ("deep_20bit_bf16", Geometry::new(4, 5)),
    ] {
        let items = drifting_workload(2048, geometry.tag_bits(), 256, 3);
        group.bench_with_input(BenchmarkId::from_parameter(label), &geometry, |b, &g| {
            b.iter(|| {
                let mut c = SortRetrieveCircuit::new(g, 4096);
                for &(t, p) in &items {
                    c.insert(black_box(t), black_box(p)).unwrap();
                }
                while let Some(x) = c.pop_min() {
                    black_box(x);
                }
            });
        });
    }
    group.finish();
}

fn bench_combined_slot(c: &mut Criterion) {
    // The §III-C simultaneous store+serve path at steady occupancy.
    c.bench_function("sorter_insert_and_pop_slot", |b| {
        let mut circuit = SortRetrieveCircuit::new(Geometry::paper(), 8192);
        for i in 0..1024u32 {
            circuit.insert(Tag(i * 3 % 4096), PacketRef(i)).unwrap();
        }
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            let min = circuit.peek_min().map(|(t, _)| t.value()).unwrap_or(0);
            let tag = Tag((min + (v % 512) as u32).min(4095));
            black_box(circuit.insert_and_pop(tag, PacketRef(9)).unwrap());
        });
    });
}

fn bench_occupancy_independence(c: &mut Criterion) {
    // The scalability claim: per-op cost must not grow with occupancy.
    let mut group = c.benchmark_group("sorter_op_vs_occupancy");
    for occupancy in [64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(occupancy),
            &occupancy,
            |b, &n| {
                let mut circuit = SortRetrieveCircuit::new(Geometry::new(4, 5), 1 << 17);
                let items = drifting_workload(n, 20, 4096, 5);
                for &(t, p) in &items {
                    circuit.insert(t, p).unwrap();
                }
                let mut v = 1u64;
                b.iter(|| {
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let min = circuit.peek_min().map(|(t, _)| t.value()).unwrap_or(0);
                    let tag = Tag((min + (v % 4096) as u32).min((1 << 20) - 1));
                    black_box(circuit.insert_and_pop(tag, PacketRef(1)).unwrap());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_pop,
    bench_combined_slot,
    bench_occupancy_independence
);
criterion_main!(benches);
