//! Memory-access instrumentation shared across the workspace.
//!
//! Table I of the paper compares lookup methods by their **worst-case
//! number of memory accesses per operation**. Every structure in the
//! `baselines` crate and the sort/retrieve circuit itself therefore
//! funnels its accesses through an [`AccessStats`] so the table can be
//! regenerated from measurements instead of being transcribed.

/// Read/write access counters with per-operation worst-case tracking.
///
/// The typical pattern is: call [`AccessStats::begin_op`] at the start of
/// each logical operation (insert, pop-min, search), record the accesses
/// the operation performs, and read the worst case off
/// [`AccessStats::worst_op_accesses`] at the end of the experiment.
///
/// # Example
///
/// ```
/// use hwsim::AccessStats;
///
/// let mut stats = AccessStats::default();
/// stats.begin_op();
/// stats.record_read();
/// stats.record_read();
/// stats.begin_op();
/// stats.record_write();
/// assert_eq!(stats.reads(), 2);
/// assert_eq!(stats.writes(), 1);
/// assert_eq!(stats.worst_op_accesses(), 2);
/// assert_eq!(stats.ops(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    reads: u64,
    writes: u64,
    ops: u64,
    current_op_accesses: u64,
    worst_op_accesses: u64,
}

impl AccessStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a new logical operation.
    pub fn begin_op(&mut self) {
        self.flush_op();
        self.ops += 1;
    }

    /// Records one read access.
    pub fn record_read(&mut self) {
        self.reads += 1;
        self.current_op_accesses += 1;
    }

    /// Records one write access.
    pub fn record_write(&mut self) {
        self.writes += 1;
        self.current_op_accesses += 1;
    }

    /// Records `n` accesses at once (reads by convention).
    pub fn record_batch(&mut self, n: u64) {
        self.reads += n;
        self.current_op_accesses += n;
    }

    /// Total reads recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total accesses of either kind.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of logical operations started.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The largest number of accesses any single operation performed.
    ///
    /// Includes the operation in progress, so it is safe to read at any
    /// point.
    pub fn worst_op_accesses(&self) -> u64 {
        self.worst_op_accesses.max(self.current_op_accesses)
    }

    /// Mean accesses per operation (0 if no operation was started).
    pub fn mean_op_accesses(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.accesses() as f64 / self.ops as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merges another counter set into this one.
    ///
    /// Worst cases take the maximum; totals add.
    pub fn merge(&mut self, other: &AccessStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.ops += other.ops;
        self.worst_op_accesses = self.worst_op_accesses().max(other.worst_op_accesses());
        self.current_op_accesses = 0;
    }

    fn flush_op(&mut self) {
        if self.current_op_accesses > self.worst_op_accesses {
            self.worst_op_accesses = self.current_op_accesses;
        }
        self.current_op_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut s = AccessStats::new();
        s.record_read();
        s.record_write();
        s.record_batch(3);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.accesses(), 5);
    }

    #[test]
    fn worst_op_tracks_maximum() {
        let mut s = AccessStats::new();
        s.begin_op();
        s.record_read();
        s.begin_op();
        s.record_read();
        s.record_read();
        s.record_read();
        s.begin_op();
        s.record_write();
        assert_eq!(s.worst_op_accesses(), 3);
        assert_eq!(s.ops(), 3);
    }

    #[test]
    fn worst_op_includes_in_progress_operation() {
        let mut s = AccessStats::new();
        s.begin_op();
        s.record_batch(10);
        assert_eq!(s.worst_op_accesses(), 10);
    }

    #[test]
    fn mean_op_accesses() {
        let mut s = AccessStats::new();
        assert_eq!(s.mean_op_accesses(), 0.0);
        s.begin_op();
        s.record_read();
        s.begin_op();
        s.record_read();
        s.record_read();
        s.record_read();
        assert_eq!(s.mean_op_accesses(), 2.0);
    }

    #[test]
    fn merge_adds_totals_and_maxes_worst_case() {
        let mut a = AccessStats::new();
        a.begin_op();
        a.record_read();
        let mut b = AccessStats::new();
        b.begin_op();
        b.record_batch(5);
        a.merge(&b);
        assert_eq!(a.accesses(), 6);
        assert_eq!(a.ops(), 2);
        assert_eq!(a.worst_op_accesses(), 5);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = AccessStats::new();
        s.begin_op();
        s.record_read();
        s.reset();
        assert_eq!(s, AccessStats::default());
    }
}
