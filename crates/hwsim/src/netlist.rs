//! Gate-level combinational netlists with delay and area extraction.
//!
//! The paper's Figs. 7 and 8 compare five matching-circuit architectures
//! by propagation delay and logic area (FPGA LUTs). Rather than assert
//! those curves, this module lets circuits be *constructed* gate by gate
//! and then measured:
//!
//! * **Function** — [`Netlist::eval`] evaluates the circuit on concrete
//!   inputs, so every netlist can be checked exhaustively against a
//!   software reference model.
//! * **Delay** — [`Netlist::delay`] is the critical-path depth under a
//!   unit-delay model (each 2-input gate or 2:1 mux costs 1, inverters
//!   are free, wires are free). Unit delays preserve the *relative*
//!   ordering and growth rates the paper reports; absolute nanoseconds
//!   belong to the abandoned 130-nm flow.
//! * **Area** — [`Netlist::area`] counts 2-input gates and muxes, a
//!   LUT-style proxy for the paper's area axis.
//!
//! Netlists are built append-only, so gate indices are already in
//! topological order and evaluation is a single forward pass.
//!
//! # Example
//!
//! ```
//! use hwsim::Netlist;
//!
//! // A full adder: sum and carry from a, b, cin.
//! let mut n = Netlist::new();
//! let a = n.input();
//! let b = n.input();
//! let cin = n.input();
//! let ab = n.xor2(a, b);
//! let sum = n.xor2(ab, cin);
//! let carry = {
//!     let t1 = n.and2(ab, cin);
//!     let t2 = n.and2(a, b);
//!     n.or2(t1, t2)
//! };
//! n.mark_output(sum);
//! n.mark_output(carry);
//! assert_eq!(n.eval(&[true, true, false]), vec![false, true]);
//! assert_eq!(n.delay(), 3); // xor -> and -> or
//! assert_eq!(n.area(), 5);
//! ```

use std::fmt;

/// A handle to one gate output within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal(u32);

impl Signal {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    Input(u32),
    Const(bool),
    Not(Signal),
    And(Signal, Signal),
    Or(Signal, Signal),
    Xor(Signal, Signal),
    /// 2:1 multiplexer: output = if sel { a } else { b }.
    Mux {
        sel: Signal,
        a: Signal,
        b: Signal,
    },
}

/// A combinational gate network.
///
/// See the [module documentation](self) for the timing and area model.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    input_count: u32,
    outputs: Vec<Signal>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of primary inputs created so far.
    pub fn input_count(&self) -> usize {
        self.input_count as usize
    }

    /// Number of primary outputs marked so far.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Adds a primary input and returns its signal.
    pub fn input(&mut self) -> Signal {
        let idx = self.input_count;
        self.input_count += 1;
        self.push(Gate::Input(idx))
    }

    /// Adds `n` primary inputs as a little-endian [`Word`].
    pub fn input_word(&mut self, n: usize) -> Word {
        Word {
            bits: (0..n).map(|_| self.input()).collect(),
        }
    }

    /// A constant-valued signal.
    pub fn constant(&mut self, value: bool) -> Signal {
        self.push(Gate::Const(value))
    }

    /// Logical NOT. Free in both the delay and area models (inverters are
    /// absorbed into adjacent cells in standard-cell flows).
    pub fn not(&mut self, a: Signal) -> Signal {
        self.check(a);
        self.push(Gate::Not(a))
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        self.check(a);
        self.check(b);
        self.push(Gate::And(a, b))
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        self.check(a);
        self.check(b);
        self.push(Gate::Or(a, b))
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.check(a);
        self.check(b);
        self.push(Gate::Xor(a, b))
    }

    /// 2:1 multiplexer: `sel ? a : b`.
    pub fn mux(&mut self, sel: Signal, a: Signal, b: Signal) -> Signal {
        self.check(sel);
        self.check(a);
        self.check(b);
        self.push(Gate::Mux { sel, a, b })
    }

    /// Balanced AND over any number of signals.
    ///
    /// An empty slice yields constant `true` (the AND identity).
    pub fn reduce_and(&mut self, signals: &[Signal]) -> Signal {
        self.reduce(signals, true, Self::and2)
    }

    /// Balanced OR over any number of signals.
    ///
    /// An empty slice yields constant `false` (the OR identity).
    pub fn reduce_or(&mut self, signals: &[Signal]) -> Signal {
        self.reduce(signals, false, Self::or2)
    }

    fn reduce(
        &mut self,
        signals: &[Signal],
        identity: bool,
        op: fn(&mut Self, Signal, Signal) -> Signal,
    ) -> Signal {
        match signals.len() {
            0 => self.constant(identity),
            1 => signals[0],
            _ => {
                // Balanced binary tree keeps depth logarithmic.
                let mut layer: Vec<Signal> = signals.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Marks a signal as a primary output. Outputs are reported by
    /// [`Netlist::eval`] in the order they were marked.
    pub fn mark_output(&mut self, s: Signal) {
        self.check(s);
        self.outputs.push(s);
    }

    /// Marks every bit of a word as an output, LSB first.
    pub fn mark_output_word(&mut self, w: &Word) {
        for &b in &w.bits {
            self.mark_output(b);
        }
    }

    /// Evaluates the netlist on `inputs` (one `bool` per primary input, in
    /// creation order) and returns the marked outputs in marking order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Netlist::input_count`].
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count as usize,
            "expected {} inputs, got {}",
            self.input_count,
            inputs.len()
        );
        let mut values = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match *gate {
                Gate::Input(idx) => inputs[idx as usize],
                Gate::Const(v) => v,
                Gate::Not(a) => !values[a.index()],
                Gate::And(a, b) => values[a.index()] && values[b.index()],
                Gate::Or(a, b) => values[a.index()] || values[b.index()],
                Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
                Gate::Mux { sel, a, b } => {
                    if values[sel.index()] {
                        values[a.index()]
                    } else {
                        values[b.index()]
                    }
                }
            };
        }
        self.outputs.iter().map(|s| values[s.index()]).collect()
    }

    /// Evaluates with the low `n` bits of `x` as inputs (LSB = input 0).
    pub fn eval_u64(&self, x: u64) -> Vec<bool> {
        let bits: Vec<bool> = (0..self.input_count).map(|i| (x >> i) & 1 == 1).collect();
        self.eval(&bits)
    }

    /// Critical-path depth from any input to any marked output, in unit
    /// gate delays.
    pub fn delay(&self) -> u32 {
        let depths = self.all_depths();
        self.outputs
            .iter()
            .map(|s| depths[s.index()])
            .max()
            .unwrap_or(0)
    }

    /// Critical-path depth including fan-out buffering.
    ///
    /// Real gates slow down with load: a signal driving `f` sinks needs a
    /// balanced buffer tree of depth ⌈log₄ f⌉ (four loads per buffer
    /// stage, a standard-cell rule of thumb). This model adds that
    /// penalty to every edge leaving a multiply-loaded signal, which is
    /// what separates architectures with bounded fan-out (ripple, select)
    /// from flat look-ahead structures whose inputs drive O(B) gates.
    /// The paper's Fig. 7 delays are post-synthesis and therefore include
    /// exactly this effect.
    pub fn delay_buffered(&self) -> u32 {
        // Fan-out of each node: number of gate inputs it feeds.
        let mut fanout = vec![0u32; self.gates.len()];
        let bump = |s: Signal, fanout: &mut Vec<u32>| fanout[s.index()] += 1;
        for gate in &self.gates {
            match *gate {
                Gate::Input(_) | Gate::Const(_) => {}
                Gate::Not(a) => bump(a, &mut fanout),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    bump(a, &mut fanout);
                    bump(b, &mut fanout);
                }
                Gate::Mux { sel, a, b } => {
                    bump(sel, &mut fanout);
                    bump(a, &mut fanout);
                    bump(b, &mut fanout);
                }
            }
        }
        let branch = |s: Signal| -> u32 {
            let f = fanout[s.index()];
            if f <= 1 {
                0
            } else {
                // ceil(log4(f))
                let mut depth = 0;
                let mut cap = 1u32;
                while cap < f {
                    cap = cap.saturating_mul(4);
                    depth += 1;
                }
                depth
            }
        };
        let mut arrivals = vec![0u32; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let edge = |s: Signal, arrivals: &[u32]| arrivals[s.index()] + branch(s);
            arrivals[i] = match *gate {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => edge(a, &arrivals),
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    edge(a, &arrivals).max(edge(b, &arrivals)) + 1
                }
                Gate::Mux { sel, a, b } => {
                    edge(sel, &arrivals)
                        .max(edge(a, &arrivals))
                        .max(edge(b, &arrivals))
                        + 1
                }
            };
        }
        self.outputs
            .iter()
            .map(|s| arrivals[s.index()])
            .max()
            .unwrap_or(0)
    }

    /// Depth of one signal under the unit-delay model.
    pub fn depth_of(&self, s: Signal) -> u32 {
        self.check(s);
        self.all_depths()[s.index()]
    }

    /// Gate count under the LUT-style area model: 2-input gates and muxes
    /// cost 1 each; inputs, constants, and inverters are free.
    pub fn area(&self) -> u32 {
        self.gates
            .iter()
            .filter(|g| {
                matches!(
                    g,
                    Gate::And(..) | Gate::Or(..) | Gate::Xor(..) | Gate::Mux { .. }
                )
            })
            .count() as u32
    }

    fn all_depths(&self) -> Vec<u32> {
        let mut depths = vec![0u32; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            depths[i] = match *gate {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => depths[a.index()],
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    depths[a.index()].max(depths[b.index()]) + 1
                }
                Gate::Mux { sel, a, b } => {
                    depths[sel.index()]
                        .max(depths[a.index()])
                        .max(depths[b.index()])
                        + 1
                }
            };
        }
        depths
    }

    fn push(&mut self, gate: Gate) -> Signal {
        let id = u32::try_from(self.gates.len()).expect("netlist too large");
        self.gates.push(gate);
        Signal(id)
    }

    fn check(&self, s: Signal) {
        assert!(
            s.index() < self.gates.len(),
            "signal {s:?} does not belong to this netlist"
        );
    }
}

/// Read-only structural view of one gate, for exporters (indices refer
/// to gate positions in creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateView {
    /// Primary input number `usize`.
    Input(usize),
    /// Constant driver.
    Const(bool),
    /// Inverter of the gate at the index.
    Not(usize),
    /// 2-input AND of the gates at the indices.
    And(usize, usize),
    /// 2-input OR of the gates at the indices.
    Or(usize, usize),
    /// 2-input XOR of the gates at the indices.
    Xor(usize, usize),
    /// 2:1 multiplexer.
    Mux {
        /// Select index.
        sel: usize,
        /// Selected when `sel` is true.
        a: usize,
        /// Selected when `sel` is false.
        b: usize,
    },
}

impl Netlist {
    /// Iterates the gates in creation (topological) order as structural
    /// views — the hook structural exporters build on.
    pub fn gates_view(&self) -> impl Iterator<Item = GateView> + '_ {
        self.gates.iter().map(|g| match *g {
            Gate::Input(i) => GateView::Input(i as usize),
            Gate::Const(v) => GateView::Const(v),
            Gate::Not(a) => GateView::Not(a.index()),
            Gate::And(a, b) => GateView::And(a.index(), b.index()),
            Gate::Or(a, b) => GateView::Or(a.index(), b.index()),
            Gate::Xor(a, b) => GateView::Xor(a.index(), b.index()),
            Gate::Mux { sel, a, b } => GateView::Mux {
                sel: sel.index(),
                a: a.index(),
                b: b.index(),
            },
        })
    }

    /// Gate indices of the marked outputs, in marking order.
    pub fn output_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.outputs.iter().map(|s| s.index())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} inputs, {} outputs, {} gates, depth {}",
            self.input_count,
            self.outputs.len(),
            self.area(),
            self.delay()
        )
    }
}

/// A little-endian bundle of signals representing a multi-bit value.
///
/// Bit 0 is the least significant bit.
///
/// # Example
///
/// ```
/// use hwsim::Netlist;
///
/// let mut n = Netlist::new();
/// let w = n.input_word(4);
/// assert_eq!(w.width(), 4);
/// let msb = w.bit(3);
/// n.mark_output(msb);
/// assert_eq!(n.eval_u64(0b1000), vec![true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<Signal>,
}

impl Word {
    /// Builds a word from explicit bits, LSB first.
    pub fn from_bits(bits: Vec<Signal>) -> Self {
        Self { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The signal for bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> Signal {
        self.bits[i]
    }

    /// All bits, LSB first.
    pub fn bits(&self) -> &[Signal] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of a 4-bit ripple-carry adder built from full
    /// adders — exercises every gate type and the evaluator.
    #[test]
    fn ripple_adder_is_correct_exhaustively() {
        let mut n = Netlist::new();
        let a = n.input_word(4);
        let b = n.input_word(4);
        let mut carry = n.constant(false);
        let mut sums = Vec::new();
        for i in 0..4 {
            let (ai, bi) = (a.bit(i), b.bit(i));
            let axb = n.xor2(ai, bi);
            let s = n.xor2(axb, carry);
            let t1 = n.and2(axb, carry);
            let t2 = n.and2(ai, bi);
            carry = n.or2(t1, t2);
            sums.push(s);
        }
        n.mark_output_word(&Word::from_bits(sums));
        n.mark_output(carry);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let out = n.eval_u64(x | (y << 4));
                let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(got, x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn delay_counts_gate_levels_not_gates() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let d = n.input();
        let ab = n.and2(a, b);
        let cd = n.and2(c, d);
        let all = n.and2(ab, cd);
        n.mark_output(all);
        assert_eq!(n.delay(), 2); // balanced tree: 2 levels, 3 gates
        assert_eq!(n.area(), 3);
    }

    #[test]
    fn inverters_are_free() {
        let mut n = Netlist::new();
        let a = n.input();
        let na = n.not(a);
        let nna = n.not(na);
        n.mark_output(nna);
        assert_eq!(n.delay(), 0);
        assert_eq!(n.area(), 0);
        assert_eq!(n.eval(&[true]), vec![true]);
        assert_eq!(n.eval(&[false]), vec![false]);
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let sel = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.mux(sel, a, b);
        n.mark_output(m);
        assert_eq!(n.eval(&[true, true, false]), vec![true]);
        assert_eq!(n.eval(&[false, true, false]), vec![false]);
        assert_eq!(n.eval(&[false, false, true]), vec![true]);
        assert_eq!(n.delay(), 1);
    }

    #[test]
    fn reduce_or_has_log_depth() {
        let mut n = Netlist::new();
        let w = n.input_word(16);
        let any = n.reduce_or(w.bits());
        n.mark_output(any);
        assert_eq!(n.delay(), 4); // log2(16)
        assert_eq!(n.area(), 15);
        assert_eq!(n.eval_u64(0), vec![false]);
        assert_eq!(n.eval_u64(1 << 9), vec![true]);
    }

    #[test]
    fn reduce_over_empty_and_single() {
        let mut n = Netlist::new();
        let a = n.input();
        let empty_and = n.reduce_and(&[]);
        let empty_or = n.reduce_or(&[]);
        let single = n.reduce_and(&[a]);
        n.mark_output(empty_and);
        n.mark_output(empty_or);
        n.mark_output(single);
        assert_eq!(n.eval(&[true]), vec![true, false, true]);
        assert_eq!(n.eval(&[false]), vec![true, false, false]);
    }

    #[test]
    fn reduce_and_odd_count() {
        let mut n = Netlist::new();
        let w = n.input_word(5);
        let all = n.reduce_and(w.bits());
        n.mark_output(all);
        assert_eq!(n.eval_u64(0b11111), vec![true]);
        assert_eq!(n.eval_u64(0b11011), vec![false]);
        assert_eq!(n.delay(), 3); // ceil(log2 5)
    }

    #[test]
    fn eval_u64_maps_lsb_to_input_zero() {
        let mut n = Netlist::new();
        let w = n.input_word(3);
        n.mark_output_word(&w);
        assert_eq!(n.eval_u64(0b101), vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "expected 2 inputs")]
    fn eval_rejects_wrong_arity() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let o = n.and2(a, b);
        n.mark_output(o);
        let _ = n.eval(&[true]);
    }

    #[test]
    fn display_summarizes() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let o = n.or2(a, b);
        n.mark_output(o);
        assert_eq!(
            n.to_string(),
            "netlist: 2 inputs, 1 outputs, 1 gates, depth 1"
        );
    }

    #[test]
    fn constants_do_not_contribute_delay_or_area() {
        let mut n = Netlist::new();
        let c = n.constant(true);
        let a = n.input();
        let o = n.and2(c, a);
        n.mark_output(o);
        assert_eq!(n.delay(), 1);
        assert_eq!(n.area(), 1);
        assert_eq!(n.eval(&[true]), vec![true]);
    }

    #[test]
    fn depth_of_individual_signal() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.and2(a, b);
        let y = n.or2(x, a);
        assert_eq!(n.depth_of(a), 0);
        assert_eq!(n.depth_of(x), 1);
        assert_eq!(n.depth_of(y), 2);
    }
}
