//! Cycle-accurate hardware simulation substrate.
//!
//! The paper implements its tag sort/retrieve circuit in 130-nm silicon.
//! This crate stands in for that silicon: it provides the building blocks
//! needed to model the circuit's behaviour *and* its timing claims in
//! software, so that statements such as "an insert takes exactly four
//! clock cycles" or "the select & look-ahead matcher has the shortest
//! critical path" become checkable properties rather than assumptions.
//!
//! The substrate has two halves:
//!
//! * **Sequential** — [`Clock`], [`Register`], and the [`Sram`] memory
//!   model. The SRAM model arbitrates port usage per cycle: issuing two
//!   accesses on a single port within one cycle is an error, which is how
//!   the 4-cycle read/read/write/write schedule of the tag storage memory
//!   is enforced rather than merely counted.
//! * **Combinational** — the [`netlist`] module, a small gate-level
//!   netlist builder with topological evaluation, unit-delay critical-path
//!   extraction, and LUT-style area accounting. The matching circuits of
//!   the paper's Figs. 7–8 are constructed as netlists so their delay and
//!   area curves are measured from structure, not asserted.
//!
//! # Example
//!
//! ```
//! use hwsim::{Clock, Sram, SramConfig};
//!
//! # fn main() -> Result<(), hwsim::SramError> {
//! let mut clock = Clock::new();
//! let mut mem = Sram::new(SramConfig::single_port(1024, 32));
//! mem.write(clock.now(), 5, 0xdead)?;
//! clock.tick();
//! assert_eq!(mem.read(clock.now(), 5)?, 0xdead);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod clock;
pub mod netlist;
mod register;
mod sram;
mod stats;
mod verilog;

pub use arbiter::PortArbiter;
pub use clock::{Clock, Cycle};
pub use netlist::{GateView, Netlist, Signal, Word};
pub use register::Register;
pub use sram::{ParityAlarm, PortKind, Sram, SramConfig, SramError, SramEvent, SramStats};
pub use stats::AccessStats;
