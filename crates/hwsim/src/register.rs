//! Clocked register model.

/// A D-type register with explicit next-value staging.
///
/// The sort/retrieve circuit keeps several architectural registers: the
/// head-of-list pointer, the empty-list head, and the initialization
/// counter of the tag storage memory. Modelling them with staged updates
/// (`load` then `clock_edge`) keeps read-after-write semantics identical
/// to hardware: a value loaded in cycle *n* is visible from cycle *n+1*.
///
/// # Example
///
/// ```
/// use hwsim::Register;
///
/// let mut head = Register::new(0u16);
/// head.load(42);
/// assert_eq!(*head.q(), 0);   // not yet visible
/// head.clock_edge();
/// assert_eq!(*head.q(), 42);  // visible after the edge
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Register<T> {
    current: T,
    next: Option<T>,
}

impl<T: Clone> Register<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            current: initial,
            next: None,
        }
    }

    /// The currently visible (registered) value.
    pub fn q(&self) -> &T {
        &self.current
    }

    /// Stages `value` to become visible at the next clock edge.
    ///
    /// A second `load` before the edge overwrites the first, matching a
    /// multiplexed D input.
    pub fn load(&mut self, value: T) {
        self.next = Some(value);
    }

    /// Commits the staged value, if any. Returns `true` if the register
    /// changed its visible value's slot (i.e. a load was pending).
    pub fn clock_edge(&mut self) -> bool {
        match self.next.take() {
            Some(v) => {
                self.current = v;
                true
            }
            None => false,
        }
    }

    /// Combinationally bypasses the register: loads and commits at once.
    ///
    /// Useful in behavioural (non-cycle-accurate) models where staging is
    /// irrelevant.
    pub fn set_now(&mut self, value: T) {
        self.next = None;
        self.current = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_value_visible_only_after_edge() {
        let mut r = Register::new(1u8);
        r.load(2);
        assert_eq!(*r.q(), 1);
        assert!(r.clock_edge());
        assert_eq!(*r.q(), 2);
        assert!(!r.clock_edge());
        assert_eq!(*r.q(), 2);
    }

    #[test]
    fn later_load_wins() {
        let mut r = Register::new(0u8);
        r.load(1);
        r.load(7);
        r.clock_edge();
        assert_eq!(*r.q(), 7);
    }

    #[test]
    fn set_now_bypasses_and_clears_pending() {
        let mut r = Register::new(0u8);
        r.load(5);
        r.set_now(9);
        assert_eq!(*r.q(), 9);
        assert!(!r.clock_edge());
        assert_eq!(*r.q(), 9);
    }

    #[test]
    fn works_with_non_copy_types() {
        let mut r = Register::new(String::from("a"));
        r.load(String::from("b"));
        r.clock_edge();
        assert_eq!(r.q(), "b");
    }
}
