//! Banked-SRAM port arbitration for overlapped memory operations.
//!
//! The deep pipeline of the sort/retrieve circuit keeps several
//! operations in flight at once, so two operations can want the same
//! SRAM bank's port on the same cycle. [`PortArbiter`] models the
//! grant logic: each bank owns one port, a request names the bank, the
//! cycle it *wants* the port, and how many cycles it will hold it, and
//! the arbiter grants the earliest cycle at which the bank is free.
//! Requests that cannot be granted on their wanted cycle are counted as
//! conflicts with their accumulated wait, which is how the pipeline's
//! structural hazards become measurable instead of assumed away.
//!
//! Grants are first-come-first-served in request order, which matches
//! the in-order issue of the pipeline it models.

/// First-come-first-served per-bank port arbiter.
///
/// # Example
///
/// ```
/// use hwsim::PortArbiter;
///
/// let mut arb = PortArbiter::new(4);
/// assert_eq!(arb.request(0, 10, 2), 10); // bank free: granted on time
/// assert_eq!(arb.request(0, 11, 2), 12); // bank busy until 12: waits
/// assert_eq!(arb.request(1, 11, 2), 11); // other bank: no contention
/// assert_eq!(arb.conflicts(), 1);
/// assert_eq!(arb.conflict_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PortArbiter {
    /// Per bank: first cycle at which the port is free again.
    free_at: Vec<u64>,
    grants: u64,
    conflicts: u64,
    conflict_cycles: u64,
}

impl PortArbiter {
    /// Creates an arbiter over `banks` single-port banks, all initially
    /// free.
    pub fn new(banks: usize) -> Self {
        Self {
            free_at: vec![0; banks],
            grants: 0,
            conflicts: 0,
            conflict_cycles: 0,
        }
    }

    /// Number of banks under arbitration.
    pub fn banks(&self) -> usize {
        self.free_at.len()
    }

    /// Requests `bank`'s port starting at cycle `want` for `hold`
    /// cycles; returns the granted start cycle (`>= want`). A grant
    /// later than `want` counts one conflict and `grant - want` wait
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or `hold` is zero.
    pub fn request(&mut self, bank: usize, want: u64, hold: u64) -> u64 {
        assert!(hold > 0, "zero-cycle port hold");
        let free_at = &mut self.free_at[bank];
        let grant = want.max(*free_at);
        *free_at = grant + hold;
        self.grants += 1;
        if grant > want {
            self.conflicts += 1;
            self.conflict_cycles += grant - want;
        }
        grant
    }

    /// Total requests granted.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Requests that had to wait for a busy bank.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total cycles requests spent waiting for busy banks.
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// Forgets all reservations and counters (banks become free at
    /// cycle zero again).
    pub fn reset(&mut self) {
        self.free_at.iter_mut().for_each(|c| *c = 0);
        self.grants = 0;
        self.conflicts = 0;
        self.conflict_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_requests_are_granted_on_time() {
        let mut arb = PortArbiter::new(2);
        assert_eq!(arb.request(0, 5, 2), 5);
        assert_eq!(arb.request(1, 5, 2), 5);
        assert_eq!(arb.request(0, 7, 2), 7);
        assert_eq!(arb.conflicts(), 0);
        assert_eq!(arb.grants(), 3);
    }

    #[test]
    fn busy_bank_delays_the_grant_and_counts_the_wait() {
        let mut arb = PortArbiter::new(1);
        assert_eq!(arb.request(0, 0, 4), 0);
        // Wants cycle 1, but the port is held through cycle 3.
        assert_eq!(arb.request(0, 1, 4), 4);
        assert_eq!(arb.conflicts(), 1);
        assert_eq!(arb.conflict_cycles(), 3);
        // The wait compounds: the second grant holds through cycle 7.
        assert_eq!(arb.request(0, 2, 4), 8);
        assert_eq!(arb.conflict_cycles(), 9);
    }

    #[test]
    fn a_late_request_after_the_hold_sees_a_free_bank() {
        let mut arb = PortArbiter::new(1);
        arb.request(0, 0, 2);
        assert_eq!(arb.request(0, 10, 2), 10);
        assert_eq!(arb.conflicts(), 0);
    }

    #[test]
    fn reset_frees_every_bank() {
        let mut arb = PortArbiter::new(2);
        arb.request(0, 0, 8);
        arb.request(0, 1, 8);
        assert_eq!(arb.conflicts(), 1);
        arb.reset();
        assert_eq!(arb.request(0, 0, 1), 0);
        assert_eq!(arb.grants(), 1);
        assert_eq!(arb.conflicts(), 0);
        assert_eq!(arb.conflict_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-cycle port hold")]
    fn zero_hold_is_rejected() {
        let mut arb = PortArbiter::new(1);
        arb.request(0, 0, 0);
    }
}
