//! Cycle-accurate SRAM model with per-cycle port arbitration.
//!
//! The tag storage memory of the paper is an external SRAM accessed through
//! a fixed four-cycle schedule (two reads followed by two writes, Fig. 9).
//! The point of this model is to make that schedule *enforceable*: each
//! port may carry at most one access per clock cycle, and a second access
//! in the same cycle is a simulation error, not a silently absorbed one.

use std::error::Error;
use std::fmt;

use faultsim::FaultTarget;

use crate::clock::Cycle;
use crate::stats::AccessStats;

/// One recorded memory access (tracing must be enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramEvent {
    /// Cycle the access occupied.
    pub cycle: Cycle,
    /// Port that carried it.
    pub port: usize,
    /// True for writes, false for reads.
    pub is_write: bool,
    /// Word address accessed.
    pub addr: usize,
    /// Data written, or the value read.
    pub data: u64,
}

impl fmt::Display for SramEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: port {} {} @{:<4} = {:#x}",
            self.cycle,
            self.port,
            if self.is_write { "WR" } else { "RD" },
            self.addr,
            self.data
        )
    }
}

/// A parity mismatch observed on a word read.
///
/// The model keeps one parity bit per word, updated on every write and
/// checked on every read (the paper's external SRAM parts carry parity
/// sideband bits for exactly this purpose). An alarm is raised at most
/// once per corruption episode: re-reading the same damaged word does not
/// duplicate the alarm, and a subsequent write re-arms detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityAlarm {
    /// Cycle of the read that tripped the check.
    pub cycle: Cycle,
    /// Word address whose parity mismatched.
    pub addr: usize,
}

impl fmt::Display for ParityAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: parity mismatch @{}", self.cycle, self.addr)
    }
}

/// Which operations a memory port may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// The port accepts both reads and writes (one per cycle in total).
    ReadWrite,
    /// The port accepts only reads.
    ReadOnly,
    /// The port accepts only writes.
    WriteOnly,
}

/// Static configuration of an [`Sram`] instance.
///
/// # Example
///
/// ```
/// use hwsim::{SramConfig, PortKind};
///
/// // The paper's level-3 tree memory: 4 kbit of single-port on-chip SRAM.
/// let cfg = SramConfig::single_port(256, 16);
/// assert_eq!(cfg.total_bits(), 4096);
///
/// // A QDR-style part: one read port and one write port.
/// let qdr = SramConfig::new(1 << 20, 36, vec![PortKind::ReadOnly, PortKind::WriteOnly]);
/// assert_eq!(qdr.ports().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramConfig {
    words: usize,
    width_bits: u32,
    ports: Vec<PortKind>,
}

impl SramConfig {
    /// A memory with an explicit port list.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero, `width_bits` is zero or above 64, or no
    /// ports are given.
    pub fn new(words: usize, width_bits: u32, ports: Vec<PortKind>) -> Self {
        assert!(words > 0, "memory must have at least one word");
        assert!(
            (1..=64).contains(&width_bits),
            "word width must be 1..=64 bits, got {width_bits}"
        );
        assert!(!ports.is_empty(), "memory must have at least one port");
        Self {
            words,
            width_bits,
            ports,
        }
    }

    /// A single read/write port memory — the paper's on-chip SRAM flavour.
    pub fn single_port(words: usize, width_bits: u32) -> Self {
        Self::new(words, width_bits, vec![PortKind::ReadWrite])
    }

    /// A dual-port memory with two independent read/write ports.
    pub fn dual_port(words: usize, width_bits: u32) -> Self {
        Self::new(
            words,
            width_bits,
            vec![PortKind::ReadWrite, PortKind::ReadWrite],
        )
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Width of one word in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// The configured ports.
    pub fn ports(&self) -> &[PortKind] {
        &self.ports
    }

    /// Total storage capacity in bits (the unit Table II reports).
    pub fn total_bits(&self) -> u64 {
        self.words as u64 * u64::from(self.width_bits)
    }
}

/// Errors returned by the SRAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SramError {
    /// The address is outside the configured word count.
    AddressOutOfRange {
        /// Offending address.
        addr: usize,
        /// Configured number of words.
        words: usize,
    },
    /// The written value does not fit the configured word width.
    ValueTooWide {
        /// Offending value.
        value: u64,
        /// Configured word width in bits.
        width_bits: u32,
    },
    /// A port was asked to carry a second access within one cycle.
    PortConflict {
        /// The port index that was double-booked.
        port: usize,
        /// The cycle in which the conflict occurred.
        cycle: Cycle,
    },
    /// The requested port does not exist.
    NoSuchPort {
        /// Requested port index.
        port: usize,
        /// Number of configured ports.
        ports: usize,
    },
    /// The requested port cannot carry this operation (e.g. write on a
    /// read-only port).
    PortKindMismatch {
        /// Requested port index.
        port: usize,
        /// The port's configured kind.
        kind: PortKind,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::AddressOutOfRange { addr, words } => {
                write!(f, "address {addr} out of range for {words}-word memory")
            }
            SramError::ValueTooWide { value, width_bits } => {
                write!(f, "value {value:#x} does not fit in {width_bits} bits")
            }
            SramError::PortConflict { port, cycle } => {
                write!(f, "port {port} already used in {cycle}")
            }
            SramError::NoSuchPort { port, ports } => {
                write!(f, "port {port} does not exist ({ports} ports configured)")
            }
            SramError::PortKindMismatch { port, kind } => {
                write!(f, "port {port} ({kind:?}) cannot carry this operation")
            }
        }
    }
}

impl Error for SramError {}

/// Per-memory access statistics.
///
/// `busy_cycles` counts distinct cycles during which at least one port was
/// active, which is the utilization figure the scheduler experiments use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SramStats {
    /// Total read operations served.
    pub reads: u64,
    /// Total write operations served.
    pub writes: u64,
    /// Number of distinct cycles with at least one access.
    pub busy_cycles: u64,
}

impl SramStats {
    /// Total accesses of either kind.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Words per lazily-allocated page in [`Sram`] paged mode.
const PAGE_WORDS: usize = 4096;

/// The word array behind an [`Sram`]: the eager zero-initialized `Vec`,
/// or a page-granular lazy store where never-written pages read as zero
/// and materialize on the first non-zero write. The two are
/// observationally identical through every access path (reads, writes,
/// peeks, and fault corruption), so paged mode only changes how much of
/// the configured word count is resident in host memory.
#[derive(Debug, Clone)]
enum Words {
    Eager(Vec<u64>),
    Paged {
        pages: Vec<Option<Box<[u64]>>>,
        resident: usize,
        peak: usize,
    },
}

impl Words {
    fn paged(words: usize) -> Self {
        Words::Paged {
            pages: (0..words.div_ceil(PAGE_WORDS)).map(|_| None).collect(),
            resident: 0,
            peak: 0,
        }
    }

    fn get(&self, addr: usize) -> u64 {
        match self {
            Words::Eager(v) => v[addr],
            Words::Paged { pages, .. } => match &pages[addr / PAGE_WORDS] {
                Some(page) => page[addr % PAGE_WORDS],
                None => 0,
            },
        }
    }

    fn set(&mut self, addr: usize, value: u64) {
        match self {
            Words::Eager(v) => v[addr] = value,
            Words::Paged {
                pages,
                resident,
                peak,
            } => {
                let slot = &mut pages[addr / PAGE_WORDS];
                match slot {
                    Some(page) => page[addr % PAGE_WORDS] = value,
                    None if value == 0 => {} // already reads as zero
                    None => {
                        let mut page = vec![0u64; PAGE_WORDS].into_boxed_slice();
                        page[addr % PAGE_WORDS] = value;
                        *slot = Some(page);
                        *resident += 1;
                        *peak = (*peak).max(*resident);
                    }
                }
            }
        }
    }
}

/// A cycle-accurate word-addressed static RAM.
///
/// Reads are modelled as same-cycle (the surrounding FSM accounts for
/// latency by how it schedules accesses across cycles, exactly as the
/// paper's four-cycle insert schedule does). What the model enforces is
/// *port bandwidth*: one access per port per cycle.
///
/// # Example
///
/// ```
/// use hwsim::{Clock, Sram, SramConfig};
///
/// # fn main() -> Result<(), hwsim::SramError> {
/// let mut clk = Clock::new();
/// let mut mem = Sram::new(SramConfig::single_port(16, 12));
/// mem.write(clk.now(), 3, 0xabc)?;
/// // A second access in the same cycle on the single port is refused:
/// assert!(mem.read(clk.now(), 3).is_err());
/// clk.tick();
/// assert_eq!(mem.read(clk.now(), 3)?, 0xabc);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    config: SramConfig,
    data: Words,
    /// One parity bit per word, packed 64 per entry. Writes refresh it;
    /// [`Sram::corrupt`] deliberately does not, which is what makes a
    /// corrupted word detectable on the next port read.
    parity: Vec<u64>,
    /// Words whose mismatch has already been reported (alarm dedup).
    alarmed: Vec<u64>,
    alarms: Vec<ParityAlarm>,
    /// Last cycle each port carried an access, if any.
    port_last_use: Vec<Option<Cycle>>,
    last_busy_cycle: Option<Cycle>,
    stats: SramStats,
    access_stats: AccessStats,
    trace: Option<Vec<SramEvent>>,
}

fn bitset_get(set: &[u64], idx: usize) -> bool {
    set[idx / 64] >> (idx % 64) & 1 == 1
}

fn bitset_assign(set: &mut [u64], idx: usize, value: bool) {
    if value {
        set[idx / 64] |= 1 << (idx % 64);
    } else {
        set[idx / 64] &= !(1 << (idx % 64));
    }
}

impl Sram {
    /// Creates a zero-initialized memory.
    pub fn new(config: SramConfig) -> Self {
        let words = config.words();
        let ports = config.ports().len();
        Self {
            config,
            data: Words::Eager(vec![0; words]),
            parity: vec![0; words.div_ceil(64)],
            alarmed: vec![0; words.div_ceil(64)],
            alarms: Vec::new(),
            port_last_use: vec![None; ports],
            last_busy_cycle: None,
            stats: SramStats::default(),
            access_stats: AccessStats::default(),
            trace: None,
        }
    }

    /// Switches an **all-zero** memory into paged mode: pages of
    /// pages of 4096 words materialize on the first non-zero write, so
    /// host-resident memory is proportional to the words actually used
    /// instead of the configured word count. Observationally identical
    /// to the eager array (zero-initialized reads included); a no-op
    /// when already paged.
    ///
    /// # Panics
    ///
    /// Panics if any word is non-zero — mode switches are a
    /// construction-time decision, not a live migration.
    pub fn set_paged(&mut self) {
        if let Words::Eager(v) = &self.data {
            assert!(
                v.iter().all(|&w| w == 0),
                "set_paged requires an all-zero memory"
            );
            self.data = Words::paged(v.len());
        }
    }

    /// Whether the word array is in paged mode.
    pub fn is_paged(&self) -> bool {
        matches!(self.data, Words::Paged { .. })
    }

    /// `(resident, peak_resident, total)` word counts. Eager memories
    /// are always fully resident.
    pub fn resident_words(&self) -> (usize, usize, usize) {
        let total = self.config.words();
        match &self.data {
            Words::Eager(_) => (total, total, total),
            Words::Paged { resident, peak, .. } => (
                (resident * PAGE_WORDS).min(total),
                (peak * PAGE_WORDS).min(total),
                total,
            ),
        }
    }

    /// Enables event tracing: every subsequent access is recorded and
    /// retrievable with [`Sram::take_trace`]. Use for waveform-style
    /// inspection of FSM schedules; off by default (zero cost).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drains and returns the recorded events (empty if tracing is off).
    pub fn take_trace(&mut self) -> Vec<SramEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The static configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Fine-grained access statistics shared with the instrumentation layer.
    pub fn access_stats(&self) -> &AccessStats {
        &self.access_stats
    }

    /// Resets the statistics counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = SramStats::default();
        self.access_stats = AccessStats::default();
    }

    /// Reads the word at `addr` through port 0.
    ///
    /// # Errors
    ///
    /// Fails on address range violations or if port 0 is already busy in
    /// `cycle`.
    pub fn read(&mut self, cycle: Cycle, addr: usize) -> Result<u64, SramError> {
        self.read_port(cycle, 0, addr)
    }

    /// Writes `value` at `addr` through port 0.
    ///
    /// # Errors
    ///
    /// Fails on range/width violations or if port 0 is already busy in
    /// `cycle`.
    pub fn write(&mut self, cycle: Cycle, addr: usize, value: u64) -> Result<(), SramError> {
        self.write_port(cycle, 0, addr, value)
    }

    /// Reads the word at `addr` through the given port.
    ///
    /// # Errors
    ///
    /// Fails if the port does not exist, is write-only, is already busy in
    /// `cycle`, or `addr` is out of range.
    pub fn read_port(&mut self, cycle: Cycle, port: usize, addr: usize) -> Result<u64, SramError> {
        self.check_addr(addr)?;
        self.claim_port(cycle, port, /*is_write=*/ false)?;
        self.stats.reads += 1;
        self.access_stats.record_read();
        let value = self.data.get(addr);
        let stored_parity = bitset_get(&self.parity, addr);
        if (value.count_ones() & 1 == 1) != stored_parity && !bitset_get(&self.alarmed, addr) {
            bitset_assign(&mut self.alarmed, addr, true);
            self.alarms.push(ParityAlarm { cycle, addr });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(SramEvent {
                cycle,
                port,
                is_write: false,
                addr,
                data: value,
            });
        }
        Ok(value)
    }

    /// Writes `value` at `addr` through the given port.
    ///
    /// # Errors
    ///
    /// Fails if the port does not exist, is read-only, is already busy in
    /// `cycle`, `addr` is out of range, or `value` does not fit the word
    /// width.
    pub fn write_port(
        &mut self,
        cycle: Cycle,
        port: usize,
        addr: usize,
        value: u64,
    ) -> Result<(), SramError> {
        self.check_addr(addr)?;
        let width = self.config.width_bits();
        if width < 64 && value >> width != 0 {
            return Err(SramError::ValueTooWide {
                value,
                width_bits: width,
            });
        }
        self.claim_port(cycle, port, /*is_write=*/ true)?;
        self.stats.writes += 1;
        self.access_stats.record_write();
        self.data.set(addr, value);
        // A write refreshes the sideband parity and re-arms detection for
        // this word — overwriting a corrupted word silently "heals" it,
        // exactly as real parity-per-word memories behave.
        bitset_assign(&mut self.parity, addr, value.count_ones() & 1 == 1);
        bitset_assign(&mut self.alarmed, addr, false);
        if let Some(trace) = &mut self.trace {
            trace.push(SramEvent {
                cycle,
                port,
                is_write: true,
                addr,
                data: value,
            });
        }
        Ok(())
    }

    /// Reads without cycle accounting — for test assertions and snapshot
    /// inspection only, never from modelled hardware.
    ///
    /// Peeks bypass the parity check: they model a logic analyser on the
    /// die, not a functional read.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range.
    pub fn peek(&self, addr: usize) -> Result<u64, SramError> {
        self.check_addr(addr)?;
        Ok(self.data.get(addr))
    }

    /// Flips the bits of `mask` in word `addr` *without* refreshing the
    /// sideband parity bit — an SEU striking the array, not a write.
    ///
    /// Returns the pre-fault word. The next functional read of the word
    /// raises a [`ParityAlarm`] iff an odd number of bits flipped (even-bit
    /// flips defeat single-bit parity, which is the realistic failure mode
    /// multi-bit fault plans probe).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn corrupt(&mut self, addr: usize, mask: u64) -> u64 {
        assert!(
            addr < self.config.words(),
            "fault address {addr} out of range for {}-word memory",
            self.config.words()
        );
        let width = self.config.width_bits();
        let mask = if width < 64 {
            mask & ((1 << width) - 1)
        } else {
            mask
        };
        let old = self.data.get(addr);
        self.data.set(addr, old ^ mask);
        old
    }

    /// Drains the parity alarms raised by reads since the last call.
    pub fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        std::mem::take(&mut self.alarms)
    }

    fn check_addr(&self, addr: usize) -> Result<(), SramError> {
        if addr >= self.config.words() {
            return Err(SramError::AddressOutOfRange {
                addr,
                words: self.config.words(),
            });
        }
        Ok(())
    }

    fn claim_port(&mut self, cycle: Cycle, port: usize, is_write: bool) -> Result<(), SramError> {
        let kinds = self.config.ports();
        let kind = *kinds.get(port).ok_or(SramError::NoSuchPort {
            port,
            ports: kinds.len(),
        })?;
        let allowed = match kind {
            PortKind::ReadWrite => true,
            PortKind::ReadOnly => !is_write,
            PortKind::WriteOnly => is_write,
        };
        if !allowed {
            return Err(SramError::PortKindMismatch { port, kind });
        }
        if self.port_last_use[port] == Some(cycle) {
            return Err(SramError::PortConflict { port, cycle });
        }
        self.port_last_use[port] = Some(cycle);
        if self.last_busy_cycle != Some(cycle) {
            self.last_busy_cycle = Some(cycle);
            self.stats.busy_cycles += 1;
        }
        Ok(())
    }
}

impl FaultTarget for Sram {
    fn fault_words(&self) -> usize {
        self.config.words()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        self.config.width_bits()
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        self.corrupt(word, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clock;

    #[test]
    fn read_back_what_was_written() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 2, 0xbeef).unwrap();
        clk.tick();
        assert_eq!(mem.read(clk.now(), 2).unwrap(), 0xbeef);
        assert_eq!(mem.peek(2).unwrap(), 0xbeef);
    }

    #[test]
    fn single_port_refuses_two_accesses_per_cycle() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 0, 1).unwrap();
        let err = mem.read(clk.now(), 0).unwrap_err();
        assert!(matches!(err, SramError::PortConflict { port: 0, .. }));
    }

    #[test]
    fn dual_port_allows_two_accesses_per_cycle() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::dual_port(8, 16));
        mem.write_port(clk.now(), 0, 0, 1).unwrap();
        // Writes commit same-edge in this model, so the other port already
        // observes the new value; what matters is that both ports were
        // usable within one cycle.
        assert_eq!(mem.read_port(clk.now(), 1, 0).unwrap(), 1);
    }

    #[test]
    fn port_becomes_free_next_cycle() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 0, 1).unwrap();
        clk.tick();
        assert_eq!(mem.read(clk.now(), 0).unwrap(), 1);
    }

    #[test]
    fn qdr_style_ports_reject_wrong_operation() {
        let clk = Clock::new();
        let cfg = SramConfig::new(8, 16, vec![PortKind::ReadOnly, PortKind::WriteOnly]);
        let mut mem = Sram::new(cfg);
        assert!(matches!(
            mem.write_port(clk.now(), 0, 0, 1),
            Err(SramError::PortKindMismatch { port: 0, .. })
        ));
        assert!(matches!(
            mem.read_port(clk.now(), 1, 0),
            Err(SramError::PortKindMismatch { port: 1, .. })
        ));
        mem.write_port(clk.now(), 1, 0, 9).unwrap();
        assert_eq!(mem.read_port(clk.now(), 0, 0).unwrap(), 9);
    }

    #[test]
    fn address_and_width_violations() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(4, 4));
        assert!(matches!(
            mem.read(clk.now(), 4),
            Err(SramError::AddressOutOfRange { addr: 4, words: 4 })
        ));
        assert!(matches!(
            mem.write(clk.now(), 0, 16),
            Err(SramError::ValueTooWide { value: 16, .. })
        ));
        // A failed access must not consume the port.
        mem.write(clk.now(), 0, 15).unwrap();
    }

    #[test]
    fn no_such_port() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(4, 8));
        assert!(matches!(
            mem.read_port(clk.now(), 3, 0),
            Err(SramError::NoSuchPort { port: 3, ports: 1 })
        ));
    }

    #[test]
    fn stats_count_reads_writes_and_busy_cycles() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::dual_port(8, 16));
        mem.write_port(clk.now(), 0, 0, 1).unwrap();
        mem.read_port(clk.now(), 1, 0).unwrap(); // same cycle: one busy cycle
        clk.tick();
        mem.read(clk.now(), 0).unwrap();
        let s = mem.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.busy_cycles, 2);
        mem.reset_stats();
        assert_eq!(mem.stats(), SramStats::default());
    }

    #[test]
    fn tracing_records_accesses_in_order() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.enable_tracing();
        mem.write(clk.now(), 3, 0xa).unwrap();
        clk.tick();
        mem.read(clk.now(), 3).unwrap();
        let trace = mem.take_trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].is_write && !trace[1].is_write);
        assert_eq!(trace[0].addr, 3);
        assert_eq!(trace[1].data, 0xa);
        assert_eq!(trace[0].to_string(), "cycle 0: port 0 WR @3    = 0xa");
        // Trace drained; subsequent accesses accumulate afresh.
        assert!(mem.take_trace().is_empty());
        clk.tick();
        mem.read(clk.now(), 3).unwrap();
        assert_eq!(mem.take_trace().len(), 1);
    }

    #[test]
    fn tracing_off_by_default() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 0, 1).unwrap();
        assert!(mem.take_trace().is_empty());
    }

    #[test]
    fn total_bits_matches_paper_level3_example() {
        // Paper §III-A: the third tree level is 4 kbit of on-chip SRAM —
        // 256 nodes of 16 bits.
        let cfg = SramConfig::single_port(256, 16);
        assert_eq!(cfg.total_bits(), 4096);
    }

    #[test]
    fn full_width_64_bit_words_accept_any_value() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(2, 64));
        mem.write(clk.now(), 0, u64::MAX).unwrap();
        assert_eq!(mem.peek(0).unwrap(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "word width must be 1..=64")]
    fn zero_width_rejected() {
        let _ = SramConfig::single_port(8, 0);
    }

    #[test]
    fn corrupted_word_trips_parity_once_until_rewritten() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 2, 0xbeef).unwrap();
        clk.tick();
        assert_eq!(mem.corrupt(2, 0b100), 0xbeef);
        assert_eq!(mem.read(clk.now(), 2).unwrap(), 0xbeeb);
        clk.tick();
        // Re-reading the same damaged word does not duplicate the alarm.
        mem.read(clk.now(), 2).unwrap();
        let alarms = mem.take_parity_alarms();
        assert_eq!(
            alarms,
            vec![ParityAlarm {
                cycle: Cycle(1),
                addr: 2
            }]
        );
        assert!(mem.take_parity_alarms().is_empty());
        // A write heals the word and re-arms detection.
        clk.tick();
        mem.write(clk.now(), 2, 0xbeef).unwrap();
        clk.tick();
        mem.read(clk.now(), 2).unwrap();
        assert!(mem.take_parity_alarms().is_empty());
        mem.corrupt(2, 1);
        clk.tick();
        mem.read(clk.now(), 2).unwrap();
        assert_eq!(mem.take_parity_alarms().len(), 1);
    }

    #[test]
    fn even_bit_flips_defeat_parity() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(4, 16));
        mem.write(clk.now(), 0, 0xff).unwrap();
        mem.corrupt(0, 0b11);
        clk.tick();
        assert_eq!(mem.read(clk.now(), 0).unwrap(), 0xfc);
        assert!(mem.take_parity_alarms().is_empty());
    }

    #[test]
    fn peek_bypasses_parity_detection() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(4, 16));
        mem.write(clk.now(), 1, 0x7).unwrap();
        mem.corrupt(1, 1);
        assert_eq!(mem.peek(1).unwrap(), 0x6);
        assert!(mem.take_parity_alarms().is_empty());
    }

    #[test]
    fn corrupt_masks_to_word_width() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(4, 4));
        mem.write(clk.now(), 0, 0b1010).unwrap();
        mem.corrupt(0, 0xf0f);
        assert_eq!(mem.peek(0).unwrap(), 0b0101);
    }

    #[test]
    #[should_panic(expected = "fault address 9 out of range")]
    fn corrupt_rejects_bad_address() {
        let mut mem = Sram::new(SramConfig::single_port(4, 8));
        mem.corrupt(9, 1);
    }

    #[test]
    fn sram_is_a_fault_target() {
        use faultsim::FaultTarget;
        let mut mem = Sram::new(SramConfig::single_port(8, 12));
        assert_eq!(mem.fault_words(), 8);
        assert_eq!(mem.fault_word_bits(3), 12);
        assert_eq!(mem.inject_fault(3, 0b1000), 0);
        assert_eq!(mem.peek(3).unwrap(), 0b1000);
    }

    #[test]
    fn paged_mode_reads_zero_and_materializes_on_write() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(3 * PAGE_WORDS, 16));
        mem.set_paged();
        assert!(mem.is_paged());
        assert_eq!(mem.resident_words(), (0, 0, 3 * PAGE_WORDS));
        assert_eq!(mem.read(clk.now(), 2 * PAGE_WORDS + 1).unwrap(), 0);
        assert_eq!(mem.resident_words().0, 0, "a read materializes nothing");
        clk.tick();
        // A zero write is already represented; a non-zero write pages in.
        mem.write(clk.now(), 5, 0).unwrap();
        assert_eq!(mem.resident_words().0, 0);
        clk.tick();
        mem.write(clk.now(), 5, 0xbeef).unwrap();
        assert_eq!(
            mem.resident_words(),
            (PAGE_WORDS, PAGE_WORDS, 3 * PAGE_WORDS)
        );
        clk.tick();
        assert_eq!(mem.read(clk.now(), 5).unwrap(), 0xbeef);
        assert_eq!(mem.peek(5).unwrap(), 0xbeef);
    }

    #[test]
    fn paged_mode_parity_behaves_like_eager() {
        let mut clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(2 * PAGE_WORDS, 16));
        mem.set_paged();
        mem.write(clk.now(), 7, 0xff).unwrap();
        // Corruption of a never-written word pages it in without
        // refreshing parity — same latent-alarm semantics as eager mode.
        assert_eq!(mem.corrupt(PAGE_WORDS + 3, 0b1), 0);
        clk.tick();
        assert_eq!(mem.read(clk.now(), PAGE_WORDS + 3).unwrap(), 1);
        assert_eq!(mem.take_parity_alarms().len(), 1);
        mem.corrupt(7, 0b100);
        clk.tick();
        mem.read(clk.now(), 7).unwrap();
        assert_eq!(mem.take_parity_alarms().len(), 1);
    }

    #[test]
    #[should_panic(expected = "all-zero memory")]
    fn set_paged_rejects_a_written_memory() {
        let clk = Clock::new();
        let mut mem = Sram::new(SramConfig::single_port(8, 16));
        mem.write(clk.now(), 0, 1).unwrap();
        mem.set_paged();
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SramError::PortConflict {
            port: 0,
            cycle: Cycle(7),
        };
        assert_eq!(e.to_string(), "port 0 already used in cycle 7");
    }
}
