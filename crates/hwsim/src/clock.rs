//! Simulation clock.

use std::fmt;

/// A simulation cycle index.
///
/// Cycles are plain counters; the mapping to wall-clock time is decided by
/// whoever owns the clock (the paper's circuit runs at 143.2 MHz, so one
/// cycle is ~6.98 ns there). A newtype keeps cycle arithmetic from mixing
/// with unrelated integers.
///
/// # Example
///
/// ```
/// use hwsim::Cycle;
/// let c = Cycle::ZERO;
/// assert_eq!(c + 4, Cycle::from(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Number of cycles elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("`earlier` must not be after `self`")
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

impl std::ops::Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl std::ops::AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A free-running simulation clock.
///
/// The clock is deliberately dumb: it only counts. Components receive the
/// current [`Cycle`] with each operation, which lets the SRAM model detect
/// two accesses racing for one port in the same cycle.
///
/// # Example
///
/// ```
/// use hwsim::Clock;
/// let mut clk = Clock::new();
/// assert_eq!(clk.now().value(), 0);
/// clk.tick();
/// clk.advance(3);
/// assert_eq!(clk.now().value(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by one cycle and returns the new cycle.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `n` cycles and returns the new cycle.
    pub fn advance(&mut self, n: u64) -> Cycle {
        self.now += n;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_counts() {
        let mut clk = Clock::new();
        assert_eq!(clk.now(), Cycle::ZERO);
        assert_eq!(clk.tick(), Cycle(1));
        assert_eq!(clk.advance(10), Cycle(11));
        assert_eq!(clk.now().value(), 11);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(5);
        assert_eq!(a + 3, Cycle(8));
        assert_eq!(Cycle(8).since(a), 3);
        let mut b = Cycle(1);
        b += 2;
        assert_eq!(b, Cycle(3));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be after")]
    fn since_panics_on_reversed_order() {
        let _ = Cycle(1).since(Cycle(2));
    }

    #[test]
    fn cycle_display_and_conversions() {
        assert_eq!(Cycle::from(7).to_string(), "cycle 7");
        assert_eq!(Cycle::from(7).value(), 7);
    }
}
