//! Property tests for the netlist substrate: structural measures are
//! consistent and generated logic evaluates like its software model.

use proptest::prelude::*;

use hwsim::Netlist;

/// Builds a balanced popcount-compare circuit: out = (popcount(x) >= k).
/// Exercises adders, comparators, and reduction trees together.
fn popcount_ge(width: usize, k: u32) -> Netlist {
    let mut n = Netlist::new();
    let w = n.input_word(width);
    // Chain of ripple increments: count in binary registers.
    let bits = u32::BITS - (width as u32).leading_zeros();
    let mut count: Vec<hwsim::Signal> = (0..bits).map(|_| n.constant(false)).collect();
    for i in 0..width {
        // count += w[i]  (ripple-carry increment gated by the bit).
        let mut carry = w.bit(i);
        for c in count.iter_mut() {
            let sum = n.xor2(*c, carry);
            let new_carry = n.and2(*c, carry);
            *c = sum;
            carry = new_carry;
        }
    }
    // count >= k comparator (k constant).
    let mut gt = n.constant(false);
    let mut eq = n.constant(true);
    for bit in (0..bits as usize).rev() {
        let cb = count[bit];
        if (k >> bit) & 1 == 0 {
            let t = n.and2(eq, cb);
            gt = n.or2(gt, t);
            let ncb = n.not(cb);
            eq = n.and2(eq, ncb);
        } else {
            eq = n.and2(eq, cb);
        }
    }
    let ge = n.or2(gt, eq);
    n.mark_output(ge);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn popcount_circuit_matches_software(x in 0u64..(1 << 12), k in 0u32..13) {
        let n = popcount_ge(12, k);
        let got = n.eval_u64(x)[0];
        prop_assert_eq!(got, x.count_ones() >= k);
    }

    #[test]
    fn buffered_delay_dominates_unit_delay(width in 2usize..24) {
        let n = popcount_ge(width, (width / 2) as u32);
        prop_assert!(n.delay_buffered() >= n.delay());
        prop_assert!(n.delay() > 0);
        prop_assert!(n.area() > 0);
    }

    #[test]
    fn reduction_trees_match_iterators(bits in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut n = Netlist::new();
        let w = n.input_word(bits.len());
        let all = n.reduce_and(w.bits());
        let any_ = n.reduce_or(w.bits());
        n.mark_output(all);
        n.mark_output(any_);
        let out = n.eval(&bits);
        prop_assert_eq!(out[0], bits.iter().all(|&b| b));
        prop_assert_eq!(out[1], bits.iter().any(|&b| b));
        // Balanced trees: depth is the ceiling log.
        let expect = (bits.len() as f64).log2().ceil() as u32;
        prop_assert!(n.delay() <= expect.max(1) + 1, "depth {} for {} bits", n.delay(), bits.len());
    }
}

#[test]
fn delay_models_agree_on_fanout_free_chains() {
    // A pure chain has no fan-out: the two models coincide.
    let mut n = Netlist::new();
    let a = n.input();
    let mut x = a;
    for _ in 0..17 {
        let one = n.constant(true);
        x = n.and2(x, one);
    }
    n.mark_output(x);
    assert_eq!(n.delay(), 17);
    assert_eq!(n.delay_buffered(), 17);
}

#[test]
fn heavy_fanout_pays_buffer_levels() {
    // One signal driving 64 gates costs ⌈log₄ 64⌉ = 3 buffer levels.
    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let hot = n.and2(a, b);
    let mut outs = Vec::new();
    for _ in 0..64 {
        let one = n.constant(true);
        outs.push(n.and2(hot, one));
    }
    let all = n.reduce_and(&outs);
    n.mark_output(all);
    // unit: 1 (hot) + 1 (load) + 6 (reduce tree) = 8
    assert_eq!(n.delay(), 8);
    assert_eq!(n.delay_buffered(), 8 + 3);
}
