//! The two-stage pipeline timing model of paper §III-A.
//!
//! "Together the three level tree and translation table require four
//! clock cycles to throughput one tag" and "the tag storage memory
//! requires four clock cycles to complete a read/write cycle ... this
//! arrangement allows the operations of the separate components to be
//! synchronized most efficiently." — i.e. the circuit is a two-stage
//! pipeline with a four-cycle beat:
//!
//! ```text
//! cycle:      0    4    8    12   16
//! op k  :   [ tree+xlat ][ storage  ]
//! op k+1:        [ tree+xlat ][ storage  ]
//! op k+2:             [ tree+xlat ][ storage  ]
//! ```
//!
//! Throughput is one operation per four cycles; *latency* is eight. The
//! overlap creates one read-after-write hazard the paper does not
//! mention: operation *k*'s translation-table entry is written in its
//! storage stage (the link address is only known then), concurrent with
//! operation *k+1*'s tree/translation stage — so when *k+1*'s closest
//! match is exactly the tag *k* inserted (duplicates, or adjacent
//! values), the address must be *forwarded* from the pipeline latch.
//! [`PipelinedSorter`] models the timing, detects those forwards, and
//! proves functional equivalence with the unpipelined circuit (the
//! forward path makes the pipeline transparent).

use hwsim::{Clock, Cycle};

use crate::circuit::{SortError, SortRetrieveCircuit};
use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};

/// Timing receipt for one pipelined operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issue {
    /// Cycle the operation entered the tree/translation stage.
    pub issued: Cycle,
    /// Cycle its storage stage completed (result architecturally
    /// visible).
    pub completed: Cycle,
}

impl Issue {
    /// End-to-end latency in cycles (always the two-stage depth × slot).
    pub fn latency(&self) -> u64 {
        self.completed.since(self.issued)
    }
}

/// Pipeline instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Operations issued.
    pub issued: u64,
    /// Translation-table read-after-write forwards (op's closest match
    /// was the immediately preceding insert).
    pub forwards: u64,
    /// Cycles from first issue to last completion.
    pub busy_cycles: u64,
}

impl PipelineStats {
    /// Sustained cycles per operation over the run (approaches the
    /// four-cycle beat as the pipeline fills).
    pub fn cycles_per_op(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.issued as f64
        }
    }
}

/// The sort/retrieve circuit with the paper's two-stage pipeline timing.
///
/// Functionally identical to [`SortRetrieveCircuit`] (the forward path
/// hides the overlap); additionally reports issue/completion cycles and
/// hazard counts.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, PacketRef, PipelinedSorter, Tag};
///
/// # fn main() -> Result<(), tagsort::SortError> {
/// let mut p = PipelinedSorter::new(Geometry::paper(), 1024);
/// let first = p.insert(Tag(10), PacketRef(0))?;
/// let second = p.insert(Tag(20), PacketRef(1))?;
/// assert_eq!(first.latency(), 8); // two 4-cycle stages
/// // Back-to-back issues are only 4 cycles apart: the stages overlap.
/// assert_eq!(second.issued.since(first.issued), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedSorter {
    circuit: SortRetrieveCircuit,
    clock: Clock,
    /// Issue cycle of the most recent operation.
    last_issue: Option<Cycle>,
    /// Tag inserted by the op currently in its storage stage, for hazard
    /// detection.
    in_flight_tag: Option<Tag>,
    stats: PipelineStats,
}

/// Stage beat in cycles (the paper's synchronized four).
const SLOT: u64 = 4;
/// Pipeline depth in stages.
const DEPTH: u64 = 2;

impl PipelinedSorter {
    /// Creates a pipelined sorter of the given geometry and capacity.
    pub fn new(geometry: Geometry, capacity: usize) -> Self {
        Self {
            circuit: SortRetrieveCircuit::new(geometry, capacity),
            clock: Clock::new(),
            last_issue: None,
            in_flight_tag: None,
            stats: PipelineStats::default(),
        }
    }

    /// The wrapped circuit (read access).
    pub fn circuit(&self) -> &SortRetrieveCircuit {
        &self.circuit
    }

    /// Number of stored tags.
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// Whether no tag is stored.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// The smallest stored tag (head register; no pipeline involvement).
    pub fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.circuit.peek_min()
    }

    /// Pipeline instrumentation.
    pub fn stats(&self) -> PipelineStats {
        let mut s = self.stats;
        if let Some(first_window) = self.stats.issued.checked_sub(1) {
            // busy = from cycle 0 to the last op's completion.
            s.busy_cycles = first_window * SLOT + SLOT * DEPTH;
        }
        s
    }

    /// Pipelined insert; returns the timing receipt.
    ///
    /// # Errors
    ///
    /// As for [`SortRetrieveCircuit::insert`].
    pub fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<Issue, SortError> {
        // Hazard check against the op still in its storage stage: its
        // translation write has not landed when this op's search reads.
        if let Some(in_flight) = self.in_flight_tag {
            if self.circuit.predecessor(tag)? == Some(in_flight) {
                self.stats.forwards += 1;
            }
        }
        self.circuit.insert(tag, payload)?;
        Ok(self.advance(Some(tag)))
    }

    /// Pipelined pop of the smallest tag with its timing receipt.
    pub fn pop_min(&mut self) -> Option<((Tag, PacketRef), Issue)> {
        let served = self.circuit.pop_min()?;
        Some((served, self.advance(None)))
    }

    /// Pipelined combined insert + serve (paper §III-C) with timing.
    ///
    /// # Errors
    ///
    /// As for [`SortRetrieveCircuit::insert_and_pop`].
    pub fn insert_and_pop(
        &mut self,
        tag: Tag,
        payload: PacketRef,
    ) -> Result<(Option<(Tag, PacketRef)>, Issue), SortError> {
        if let Some(in_flight) = self.in_flight_tag {
            if self.circuit.predecessor(tag)? == Some(in_flight) {
                self.stats.forwards += 1;
            }
        }
        let served = self.circuit.insert_and_pop(tag, payload)?;
        Ok((served, self.advance(Some(tag))))
    }

    fn advance(&mut self, inserted: Option<Tag>) -> Issue {
        let issued = match self.last_issue {
            // Stages overlap: the next op issues one beat later.
            Some(prev) => prev + SLOT,
            None => self.clock.now(),
        };
        self.last_issue = Some(issued);
        self.in_flight_tag = inserted;
        self.stats.issued += 1;
        Issue {
            issued,
            completed: issued + SLOT * DEPTH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_eight_throughput_is_four() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 256);
        let mut prev: Option<Issue> = None;
        for i in 0..50u32 {
            let r = p.insert(Tag(i * 3), PacketRef(i)).unwrap();
            assert_eq!(r.latency(), 8);
            if let Some(prev) = prev {
                assert_eq!(r.issued.since(prev.issued), 4, "one op per beat");
            }
            prev = Some(r);
        }
        // Sustained cost approaches the 4-cycle beat: 50 ops in 49*4+8.
        let cpo = p.stats().cycles_per_op();
        assert!((4.0..=4.2).contains(&cpo), "cycles/op {cpo}");
    }

    #[test]
    fn duplicate_back_to_back_forwards_the_translation_write() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 64);
        p.insert(Tag(7), PacketRef(0)).unwrap();
        assert_eq!(p.stats().forwards, 0);
        // The second 7's closest match is the 7 still in the storage
        // stage: its address must be forwarded.
        p.insert(Tag(7), PacketRef(1)).unwrap();
        assert_eq!(p.stats().forwards, 1);
        // An adjacent value whose predecessor is the in-flight tag also
        // needs the forward.
        p.insert(Tag(8), PacketRef(2)).unwrap();
        assert_eq!(p.stats().forwards, 2);
        // A value below everything stored has no predecessor: no forward.
        p.insert(Tag(5), PacketRef(3)).unwrap();
        assert_eq!(p.stats().forwards, 2);
        // A value whose predecessor is an *older* (already landed) tag
        // reads the translation table normally.
        p.insert(Tag(3000), PacketRef(4)).unwrap();
        assert_eq!(p.stats().forwards, 2, "predecessor 8 landed two beats ago");
    }

    #[test]
    fn pipeline_is_functionally_transparent() {
        // Same op stream through pipelined and plain circuits: identical
        // service order.
        let mut plain = SortRetrieveCircuit::new(Geometry::paper(), 512);
        let mut piped = PipelinedSorter::new(Geometry::paper(), 512);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..400u32 {
            let tag = Tag((next() % 4096) as u32);
            match next() % 3 {
                0 | 1 => {
                    plain.insert(tag, PacketRef(i)).unwrap();
                    piped.insert(tag, PacketRef(i)).unwrap();
                }
                _ => {
                    let a = plain.pop_min();
                    let b = piped.pop_min().map(|(s, _)| s);
                    assert_eq!(a, b);
                }
            }
        }
        let a: Vec<_> = std::iter::from_fn(|| plain.pop_min()).collect();
        let b: Vec<_> = std::iter::from_fn(|| piped.pop_min().map(|(s, _)| s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn combined_slot_keeps_the_beat() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 64);
        let a = p.insert(Tag(5), PacketRef(0)).unwrap();
        let (served, b) = p.insert_and_pop(Tag(9), PacketRef(1)).unwrap();
        assert_eq!(served, Some((Tag(5), PacketRef(0))));
        assert_eq!(b.issued.since(a.issued), 4);
        assert_eq!(b.latency(), 8);
    }

    #[test]
    fn empty_pop_does_not_occupy_the_pipeline() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 16);
        assert!(p.pop_min().is_none());
        assert_eq!(p.stats().issued, 0);
    }
}
