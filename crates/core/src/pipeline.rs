//! The two-stage pipeline timing model of paper §III-A.
//!
//! "Together the three level tree and translation table require four
//! clock cycles to throughput one tag" and "the tag storage memory
//! requires four clock cycles to complete a read/write cycle ... this
//! arrangement allows the operations of the separate components to be
//! synchronized most efficiently." — i.e. the circuit is a two-stage
//! pipeline with a four-cycle beat:
//!
//! ```text
//! cycle:      0    4    8    12   16
//! op k  :   [ tree+xlat ][ storage  ]
//! op k+1:        [ tree+xlat ][ storage  ]
//! op k+2:             [ tree+xlat ][ storage  ]
//! ```
//!
//! Throughput is one operation per four cycles; *latency* is eight. The
//! overlap creates one read-after-write hazard the paper does not
//! mention: operation *k*'s translation-table entry is written in its
//! storage stage (the link address is only known then), concurrent with
//! operation *k+1*'s tree/translation stage — so when *k+1*'s closest
//! match is exactly the tag *k* inserted (duplicates, or adjacent
//! values), the address must be *forwarded* from the pipeline latch.
//! [`PipelinedSorter`] models the timing, detects those forwards, and
//! proves functional equivalence with the unpipelined circuit (the
//! forward path makes the pipeline transparent).

use std::collections::VecDeque;

use faultsim::{FaultAttachError, FaultComponent, FaultTarget};
use hwsim::{Clock, Cycle, ParityAlarm, PortArbiter};

use crate::backend::{BackendSpec, ResidentMemory, SortBackend};
use crate::circuit::{
    CircuitStats, IntegrityEvent, SectionScrub, SortError, SortRetrieveCircuit, TranslationScrub,
};
use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};
use crate::tagstore::{MemoryKind, StoreCorruption};

/// Timing receipt for one pipelined operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issue {
    /// Cycle the operation entered the tree/translation stage.
    pub issued: Cycle,
    /// Cycle its storage stage completed (result architecturally
    /// visible).
    pub completed: Cycle,
}

impl Issue {
    /// End-to-end latency in cycles (always the two-stage depth × slot).
    pub fn latency(&self) -> u64 {
        self.completed.since(self.issued)
    }
}

/// Pipeline instrumentation.
///
/// [`PipelinedSorter`] (the paper's two-stage beat) only populates the
/// first three fields; the deep [`PipelinedSortBackend`] additionally
/// counts the stalls and banked-port conflicts its one-op-per-cycle
/// issue exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Operations issued.
    pub issued: u64,
    /// Read-after-write forwards: the op read state an in-flight op of
    /// the *same kind* had not yet written back, and took it from a
    /// pipeline latch instead (free — no bubble).
    pub forwards: u64,
    /// Cycles from first issue to last completion.
    pub busy_cycles: u64,
    /// One-cycle bubbles for cross-kind hazards (an insert and a pop in
    /// flight against the same trie section cannot forward — the
    /// occupancy update direction differs — so the younger op stalls).
    pub stalls: u64,
    /// Total bubble cycles inserted by those stalls.
    pub stall_cycles: u64,
    /// Tag-store accesses that found their section's SRAM bank port
    /// still held by an earlier in-flight op.
    pub port_conflicts: u64,
    /// Total cycles those conflicting accesses waited for the port.
    pub conflict_cycles: u64,
}

impl PipelineStats {
    /// Sustained cycles per operation over the run (approaches the
    /// four-cycle beat as the pipeline fills).
    pub fn cycles_per_op(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.issued as f64
        }
    }
}

/// The sort/retrieve circuit with the paper's two-stage pipeline timing.
///
/// Functionally identical to [`SortRetrieveCircuit`] (the forward path
/// hides the overlap); additionally reports issue/completion cycles and
/// hazard counts.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, PacketRef, PipelinedSorter, Tag};
///
/// # fn main() -> Result<(), tagsort::SortError> {
/// let mut p = PipelinedSorter::new(Geometry::paper(), 1024);
/// let first = p.insert(Tag(10), PacketRef(0))?;
/// let second = p.insert(Tag(20), PacketRef(1))?;
/// assert_eq!(first.latency(), 8); // two 4-cycle stages
/// // Back-to-back issues are only 4 cycles apart: the stages overlap.
/// assert_eq!(second.issued.since(first.issued), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedSorter {
    circuit: SortRetrieveCircuit,
    clock: Clock,
    /// Issue cycle of the most recent operation.
    last_issue: Option<Cycle>,
    /// Tag inserted by the op currently in its storage stage, for hazard
    /// detection.
    in_flight_tag: Option<Tag>,
    stats: PipelineStats,
}

/// Stage beat in cycles (the paper's synchronized four).
const SLOT: u64 = 4;
/// Pipeline depth in stages.
const DEPTH: u64 = 2;

impl PipelinedSorter {
    /// Creates a pipelined sorter of the given geometry and capacity.
    pub fn new(geometry: Geometry, capacity: usize) -> Self {
        Self {
            circuit: SortRetrieveCircuit::new(geometry, capacity),
            clock: Clock::new(),
            last_issue: None,
            in_flight_tag: None,
            stats: PipelineStats::default(),
        }
    }

    /// The wrapped circuit (read access).
    pub fn circuit(&self) -> &SortRetrieveCircuit {
        &self.circuit
    }

    /// Number of stored tags.
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// Whether no tag is stored.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// The smallest stored tag (head register; no pipeline involvement).
    pub fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.circuit.peek_min()
    }

    /// Pipeline instrumentation.
    pub fn stats(&self) -> PipelineStats {
        let mut s = self.stats;
        if let Some(first_window) = self.stats.issued.checked_sub(1) {
            // busy = from cycle 0 to the last op's completion.
            s.busy_cycles = first_window * SLOT + SLOT * DEPTH;
        }
        s
    }

    /// Pipelined insert; returns the timing receipt.
    ///
    /// # Errors
    ///
    /// As for [`SortRetrieveCircuit::insert`].
    pub fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<Issue, SortError> {
        // Hazard check against the op still in its storage stage: its
        // translation write has not landed when this op's search reads.
        if let Some(in_flight) = self.in_flight_tag {
            if self.circuit.predecessor(tag)? == Some(in_flight) {
                self.stats.forwards += 1;
            }
        }
        self.circuit.insert(tag, payload)?;
        Ok(self.advance(Some(tag)))
    }

    /// Pipelined pop of the smallest tag with its timing receipt.
    pub fn pop_min(&mut self) -> Option<((Tag, PacketRef), Issue)> {
        let served = self.circuit.pop_min()?;
        Some((served, self.advance(None)))
    }

    /// Pipelined combined insert + serve (paper §III-C) with timing.
    ///
    /// # Errors
    ///
    /// As for [`SortRetrieveCircuit::insert_and_pop`].
    pub fn insert_and_pop(
        &mut self,
        tag: Tag,
        payload: PacketRef,
    ) -> Result<(Option<(Tag, PacketRef)>, Issue), SortError> {
        if let Some(in_flight) = self.in_flight_tag {
            if self.circuit.predecessor(tag)? == Some(in_flight) {
                self.stats.forwards += 1;
            }
        }
        let served = self.circuit.insert_and_pop(tag, payload)?;
        Ok((served, self.advance(Some(tag))))
    }

    fn advance(&mut self, inserted: Option<Tag>) -> Issue {
        let issued = match self.last_issue {
            // Stages overlap: the next op issues one beat later.
            Some(prev) => prev + SLOT,
            None => self.clock.now(),
        };
        self.last_issue = Some(issued);
        self.in_flight_tag = inserted;
        self.stats.issued += 1;
        Issue {
            issued,
            completed: issued + SLOT * DEPTH,
        }
    }
}

/// What an in-flight operation does to its trie section's occupancy,
/// for hazard classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// Sets occupancy bits / writes a translation entry.
    Insert,
    /// Clears occupancy bits / clears or redirects a translation entry.
    Pop,
}

/// One operation still inside the deep pipeline.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Top-level trie section the op touches.
    section: u32,
    /// Cycle the op entered stage 0.
    issue: u64,
    kind: OpKind,
}

/// The deep-pipelined sort/retrieve circuit: one operation per cycle.
///
/// Where [`PipelinedSorter`] keeps the paper's two coarse stages on a
/// four-cycle beat, this backend registers **every** component boundary
/// — one stage per trie level, one for the translation table, one for
/// the tag store — the way Jiang et al. pipeline tries for IP lookup.
/// With `L` trie levels the pipeline is `L + 2` deep and issues one
/// operation per cycle when hazard-free, so modeled throughput at the
/// paper's geometry rises from one tag per four cycles to one per
/// cycle (~143 Mpps per port at the 143.2-MHz fabricated clock).
///
/// Two hazards can break the beat, both detected from the operation
/// stream against the in-flight window:
///
/// * **Same-kind, same-section** back-to-back ops forward through the
///   stage latches (the younger op's read would miss the older op's
///   pending write; the latch supplies it) — counted, free.
/// * **Cross-kind, same-section** ops stall one cycle: an insert and a
///   pop drive a section's occupancy bits in opposite directions, and
///   the read-modify-write cannot be forwarded — counted, one bubble.
///
/// The tag-store stage additionally contends for banked SRAM ports
/// through [`hwsim::PortArbiter`] (one bank per top-level section): a
/// burst into one section serializes on that bank's port even when the
/// trie stages themselves flow freely.
///
/// Architecturally the backend is the sequential circuit — every
/// [`SortBackend`] method delegates, so service order, cycle charges,
/// fault surfaces, and scrubbing are *identical* to the `trie` backend
/// (the conformance matrix pins this). The pipeline is a parallel
/// timing model; read it through
/// [`pipeline_stats`](PipelinedSortBackend::pipeline_stats).
///
/// # Example
///
/// ```
/// use tagsort::{
///     BackendSpec, CleanupPolicy, Geometry, MemoryKind, PacketRef, PipelinedSortBackend,
///     SortBackend, Tag,
/// };
///
/// # fn main() -> Result<(), tagsort::SortError> {
/// let mut b = PipelinedSortBackend::build(&BackendSpec {
///     geometry: Geometry::paper(),
///     capacity: 1024,
///     cleanup: CleanupPolicy::Eager,
///     memory: MemoryKind::SinglePort,
/// });
/// for i in 0..100u32 {
///     b.insert(Tag((i * 289) % 4096), PacketRef(i))?;
/// }
/// // Hazard-free issue sustains close to one op per cycle.
/// assert!(b.pipeline_stats().cycles_per_op() < 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedSortBackend {
    circuit: SortRetrieveCircuit,
    memory: MemoryKind,
    /// Stage count: one per trie level + translation + tag store.
    depth: u64,
    /// Cycle the next operation would enter stage 0 (monotone).
    next_issue: u64,
    /// Completion cycle of the latest-finishing operation so far.
    final_cycle: u64,
    in_flight: VecDeque<InFlight>,
    arbiter: PortArbiter,
    stats: PipelineStats,
}

impl PipelinedSortBackend {
    /// Creates a deep-pipelined backend with eager cleanup and
    /// single-port storage (the conventions of
    /// [`SortRetrieveCircuit::new`]).
    pub fn new(geometry: Geometry, capacity: usize) -> Self {
        Self::build(&BackendSpec {
            geometry,
            capacity,
            cleanup: crate::circuit::CleanupPolicy::Eager,
            memory: MemoryKind::SinglePort,
        })
    }

    /// The wrapped sequential circuit (read access).
    pub fn circuit(&self) -> &SortRetrieveCircuit {
        &self.circuit
    }

    /// Pipeline depth in stages: one per trie level, plus the
    /// translation and tag-store stages.
    pub fn pipeline_depth(&self) -> u64 {
        self.depth
    }

    /// Deep-pipeline timing instrumentation (issue count, forwards,
    /// stalls, port conflicts, busy cycles). Distinct from
    /// [`SortBackend::stats`], which reports the architectural circuit
    /// counters shared with the `trie` backend.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.stats
    }

    /// Flip-flop bits added by the stage registers: each of the
    /// `depth` stage boundaries latches the tag, the packet reference,
    /// the link address resolved so far, and valid/kind control. This
    /// is the area the deep pipeline costs over the two-stage design
    /// (the netlist gate model is untouched — registers, not logic).
    pub fn stage_register_bits(&self) -> u64 {
        let tag_bits = u64::from(self.circuit.geometry().tag_bits());
        let payload_bits = 32; // PacketRef: slot index + generation
        let addr_bits = u64::from(
            (self.circuit.capacity().next_power_of_two().max(2))
                .trailing_zeros()
                .max(1),
        );
        let control_bits = 2; // valid + op kind
        self.depth * (tag_bits + payload_bits + addr_bits + control_bits)
    }

    /// How many cycles the tag-store stage holds its SRAM bank port:
    /// half the architectural slot (the slot pairs a read phase with a
    /// write phase; the banked layout lets consecutive ops overlap
    /// them), so 2 for single-port and 1 for QDR-like memory.
    fn store_hold_cycles(&self) -> u64 {
        (self.memory.slot_cycles() / 2).max(1)
    }

    /// Models one operation entering the pipeline: hazard-checks it
    /// against the in-flight window, arbitrates the tag-store bank
    /// port, and advances the issue pointer.
    fn issue_op(&mut self, section: u32, kind: OpKind) {
        let issue = self.next_issue;
        let depth = self.depth;
        // Ops whose write-back stage has passed are architecturally
        // visible: they leave the hazard window.
        self.in_flight.retain(|op| op.issue + depth > issue);

        let mut stall = false;
        let mut forward = false;
        for op in &self.in_flight {
            if op.section == section {
                if op.kind == kind {
                    forward = true;
                } else {
                    stall = true;
                }
            }
        }
        // A stall dominates: the bubble gives the conflicting update
        // time to land, so no forward is needed on top.
        let issue = if stall {
            self.stats.stalls += 1;
            self.stats.stall_cycles += 1;
            issue + 1
        } else {
            if forward {
                self.stats.forwards += 1;
            }
            issue
        };

        // The tag-store stage is the last: it wants its section's bank
        // port when the op reaches it.
        let want = issue + depth - 1;
        let hold = self.store_hold_cycles();
        let grant = self.arbiter.request(section as usize, want, hold);
        let completed = grant + hold;

        self.stats.issued += 1;
        self.stats.port_conflicts = self.arbiter.conflicts();
        self.stats.conflict_cycles = self.arbiter.conflict_cycles();
        self.final_cycle = self.final_cycle.max(completed);
        self.stats.busy_cycles = self.final_cycle;
        self.in_flight.push_back(InFlight {
            section,
            issue,
            kind,
        });
        self.next_issue = issue + 1;
    }
}

impl SortBackend for PipelinedSortBackend {
    fn build(spec: &BackendSpec) -> Self {
        let depth = u64::from(spec.geometry.levels()) + 2;
        Self {
            circuit: SortRetrieveCircuit::with_policy_and_memory(
                spec.geometry,
                spec.capacity,
                spec.cleanup,
                spec.memory,
            ),
            memory: spec.memory,
            depth,
            next_issue: 0,
            final_cycle: 0,
            in_flight: VecDeque::new(),
            arbiter: PortArbiter::new(spec.geometry.sections() as usize),
            stats: PipelineStats::default(),
        }
    }

    fn name(&self) -> &'static str {
        "pipelined"
    }

    fn geometry(&self) -> Geometry {
        self.circuit.geometry()
    }

    fn capacity(&self) -> usize {
        self.circuit.capacity()
    }

    fn len(&self) -> usize {
        self.circuit.len()
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError> {
        self.circuit.insert(tag, payload)?;
        // Rejected inserts never enter the pipeline; accepted ones
        // issue into the section their tag's top literal selects.
        self.issue_op(self.circuit.geometry().section_of(tag), OpKind::Insert);
        Ok(())
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let (tag, payload) = self.circuit.pop_min()?;
        // A pop's section is known once the head register names the
        // minimum — deterministic from the served tag.
        self.issue_op(self.circuit.geometry().section_of(tag), OpKind::Pop);
        Some((tag, payload))
    }

    fn pop_max(&mut self) -> Option<(Tag, PacketRef)> {
        let (tag, payload) = self.circuit.pop_max()?;
        self.issue_op(self.circuit.geometry().section_of(tag), OpKind::Pop);
        Some((tag, payload))
    }

    fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.circuit.peek_min()
    }

    fn recycle_section(&mut self, section: u32) -> usize {
        // Bulk maintenance between wraps, not a pipelined datapath op.
        self.circuit.recycle_section(section)
    }

    fn cycles(&self) -> u64 {
        self.circuit.cycles().value()
    }

    fn stats(&self) -> CircuitStats {
        self.circuit.stats()
    }

    fn set_tolerant(&mut self, tolerant: bool) {
        self.circuit.set_tolerant(tolerant);
    }

    fn fault_target_mut(
        &mut self,
        component: FaultComponent,
    ) -> Result<&mut dyn FaultTarget, FaultAttachError> {
        if component == FaultComponent::Buffer {
            return Err(FaultAttachError {
                backend: self.name(),
                component,
            });
        }
        Ok(self.circuit.fault_target_mut(component))
    }

    fn scrub_section(&mut self, section: u32, repair: bool) -> SectionScrub {
        self.circuit.scrub_section(section, repair)
    }

    fn scrub_translation(&mut self, section: u32, repair: bool) -> TranslationScrub {
        self.circuit.scrub_translation_section(section, repair)
    }

    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        self.circuit.take_integrity_events()
    }

    fn take_store_corruptions(&mut self) -> Vec<StoreCorruption> {
        self.circuit.take_store_corruptions()
    }

    fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        self.circuit.take_parity_alarms()
    }

    fn trie_fault_word_index(&self, level: u32, index: u32) -> usize {
        self.circuit.trie_fault_word_index(level, index)
    }

    fn set_paged(&mut self) -> bool {
        self.circuit.set_paged();
        true
    }

    fn resident_memory(&self) -> Option<ResidentMemory> {
        Some(self.circuit.resident_memory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_eight_throughput_is_four() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 256);
        let mut prev: Option<Issue> = None;
        for i in 0..50u32 {
            let r = p.insert(Tag(i * 3), PacketRef(i)).unwrap();
            assert_eq!(r.latency(), 8);
            if let Some(prev) = prev {
                assert_eq!(r.issued.since(prev.issued), 4, "one op per beat");
            }
            prev = Some(r);
        }
        // Sustained cost approaches the 4-cycle beat: 50 ops in 49*4+8.
        let cpo = p.stats().cycles_per_op();
        assert!((4.0..=4.2).contains(&cpo), "cycles/op {cpo}");
    }

    #[test]
    fn duplicate_back_to_back_forwards_the_translation_write() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 64);
        p.insert(Tag(7), PacketRef(0)).unwrap();
        assert_eq!(p.stats().forwards, 0);
        // The second 7's closest match is the 7 still in the storage
        // stage: its address must be forwarded.
        p.insert(Tag(7), PacketRef(1)).unwrap();
        assert_eq!(p.stats().forwards, 1);
        // An adjacent value whose predecessor is the in-flight tag also
        // needs the forward.
        p.insert(Tag(8), PacketRef(2)).unwrap();
        assert_eq!(p.stats().forwards, 2);
        // A value below everything stored has no predecessor: no forward.
        p.insert(Tag(5), PacketRef(3)).unwrap();
        assert_eq!(p.stats().forwards, 2);
        // A value whose predecessor is an *older* (already landed) tag
        // reads the translation table normally.
        p.insert(Tag(3000), PacketRef(4)).unwrap();
        assert_eq!(p.stats().forwards, 2, "predecessor 8 landed two beats ago");
    }

    #[test]
    fn pipeline_is_functionally_transparent() {
        // Same op stream through pipelined and plain circuits: identical
        // service order.
        let mut plain = SortRetrieveCircuit::new(Geometry::paper(), 512);
        let mut piped = PipelinedSorter::new(Geometry::paper(), 512);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..400u32 {
            let tag = Tag((next() % 4096) as u32);
            match next() % 3 {
                0 | 1 => {
                    plain.insert(tag, PacketRef(i)).unwrap();
                    piped.insert(tag, PacketRef(i)).unwrap();
                }
                _ => {
                    let a = plain.pop_min();
                    let b = piped.pop_min().map(|(s, _)| s);
                    assert_eq!(a, b);
                }
            }
        }
        let a: Vec<_> = std::iter::from_fn(|| plain.pop_min()).collect();
        let b: Vec<_> = std::iter::from_fn(|| piped.pop_min().map(|(s, _)| s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn combined_slot_keeps_the_beat() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 64);
        let a = p.insert(Tag(5), PacketRef(0)).unwrap();
        let (served, b) = p.insert_and_pop(Tag(9), PacketRef(1)).unwrap();
        assert_eq!(served, Some((Tag(5), PacketRef(0))));
        assert_eq!(b.issued.since(a.issued), 4);
        assert_eq!(b.latency(), 8);
    }

    #[test]
    fn empty_pop_does_not_occupy_the_pipeline() {
        let mut p = PipelinedSorter::new(Geometry::paper(), 16);
        assert!(p.pop_min().is_none());
        assert_eq!(p.stats().issued, 0);
    }

    fn deep(capacity: usize) -> PipelinedSortBackend {
        PipelinedSortBackend::new(Geometry::paper(), capacity)
    }

    #[test]
    fn deep_pipeline_extracts_and_reinstalls_a_flow() {
        let mut src = deep(64);
        let mut dst = deep(64);
        for (t, p) in [(40u32, 0u32), (12, 1), (40, 2), (55, 3)] {
            src.insert(Tag(t), PacketRef(p)).unwrap();
        }
        let taken = src.extract_flow(&mut |p: PacketRef| p.index() == 1 || p.index() == 3);
        assert_eq!(
            taken,
            vec![(Tag(12), PacketRef(1)), (Tag(55), PacketRef(3))]
        );
        dst.install_flow(&taken).unwrap();
        // Survivors keep FIFO among the duplicate 40s.
        assert_eq!(
            src.drain_entries(),
            vec![(Tag(40), PacketRef(0)), (Tag(40), PacketRef(2))]
        );
        assert_eq!(dst.drain_entries(), taken);
    }

    #[test]
    fn deep_pipeline_is_five_stages_at_paper_geometry() {
        let b = deep(64);
        // Three trie levels + translation + tag store.
        assert_eq!(b.pipeline_depth(), 5);
        assert!(b.stage_register_bits() > 0);
    }

    #[test]
    fn hazard_free_issue_sustains_one_op_per_cycle() {
        let mut b = deep(4096);
        // Stride 289 hops to a new section every op (each bank is
        // revisited ~15 ops later), so neither the hazard window nor
        // any bank port sees back-to-back traffic.
        for i in 0..2000u32 {
            b.insert(Tag((i * 289) % 4096), PacketRef(i)).unwrap();
        }
        let s = b.pipeline_stats();
        assert_eq!(s.issued, 2000);
        assert_eq!(s.stalls, 0);
        assert_eq!(s.port_conflicts, 0);
        let cpo = s.cycles_per_op();
        assert!(cpo < 1.1, "cycles/op {cpo} should approach 1");
    }

    #[test]
    fn same_kind_same_section_forwards_cross_kind_stalls() {
        let mut b = deep(64);
        // Three inserts into section 0: the younger two forward.
        b.insert(Tag(1), PacketRef(0)).unwrap();
        b.insert(Tag(2), PacketRef(1)).unwrap();
        b.insert(Tag(3), PacketRef(2)).unwrap();
        let s = b.pipeline_stats();
        assert_eq!(s.forwards, 2);
        assert_eq!(s.stalls, 0);
        // A pop of section 0 against in-flight inserts cannot forward:
        // one bubble.
        assert_eq!(b.pop_min(), Some((Tag(1), PacketRef(0))));
        let s = b.pipeline_stats();
        assert_eq!(s.stalls, 1);
        assert_eq!(s.stall_cycles, 1);
    }

    #[test]
    fn same_section_burst_contends_for_the_bank_port() {
        let mut b = deep(64);
        for i in 0..8u32 {
            b.insert(Tag(i), PacketRef(i)).unwrap();
        }
        let s = b.pipeline_stats();
        // Single-port storage holds the section-0 bank two cycles per
        // access; one-per-cycle issue into one section must queue.
        assert!(s.port_conflicts > 0);
        assert!(s.conflict_cycles >= s.port_conflicts);
        assert!(s.cycles_per_op() > 1.0);
    }

    #[test]
    fn deep_pipeline_is_functionally_transparent() {
        let mut plain = SortRetrieveCircuit::new(Geometry::paper(), 512);
        let mut piped = deep(512);
        let mut state = 1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..600u32 {
            let tag = Tag((next() % 4096) as u32);
            match next() % 3 {
                0 | 1 => {
                    assert_eq!(
                        plain.insert(tag, PacketRef(i)),
                        piped.insert(tag, PacketRef(i))
                    );
                }
                _ => assert_eq!(plain.pop_min(), piped.pop_min()),
            }
        }
        let a: Vec<_> = std::iter::from_fn(|| plain.pop_min()).collect();
        let b: Vec<_> = std::iter::from_fn(|| piped.pop_min()).collect();
        assert_eq!(a, b);
        // The architectural counters are the sequential circuit's.
        assert_eq!(SortBackend::stats(&piped), plain.stats());
    }

    #[test]
    fn pipeline_timing_is_deterministic() {
        let run = || {
            let mut b = deep(256);
            for i in 0..300u32 {
                let tag = Tag((i * 7919) % 4096);
                if i % 3 == 2 {
                    b.pop_min();
                } else {
                    b.insert(tag, PacketRef(i)).unwrap();
                }
            }
            b.pipeline_stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejected_inserts_and_empty_pops_do_not_issue() {
        let mut b = deep(1);
        assert!(b.pop_min().is_none());
        b.insert(Tag(1), PacketRef(0)).unwrap();
        assert!(b.insert(Tag(2), PacketRef(1)).is_err(), "over capacity");
        assert_eq!(b.pipeline_stats().issued, 1);
    }
}
