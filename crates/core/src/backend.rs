//! The sort-backend abstraction: one pop-min primitive, many sorters.
//!
//! PIFO (Sivaraman et al.) argues that a single *pop-min* primitive can
//! serve a whole family of packet schedulers; Eiffel (Saeed et al.)
//! shows the same bucketed-queue structure the paper builds in silicon
//! also reaches tens of Mpps in software when the occupancy bitmaps are
//! walked with find-first-set instructions. [`SortBackend`] extracts
//! that primitive from [`SortRetrieveCircuit`] so the scheduler stack
//! can swap sorters without caring which one is underneath:
//!
//! * the paper's trie circuit ([`SortRetrieveCircuit`]) — the default,
//!   with full cycle accounting and fault modeling;
//! * the flat FFS sorter (`fastpath::FfsSorter`) — the software
//!   fast path, sequence-identical to the trie on every workload;
//! * the binary-heap oracle ([`HeapSorter`](crate::HeapSorter)) — the
//!   obviously-correct reference the other two are cross-checked
//!   against.
//!
//! The contract is deliberately narrow: insert a tag, pop the minimum,
//! bulk-delete a wrapped section, and expose the occupancy and
//! introspection hooks the scrubber and telemetry layers need. Backends
//! without addressable hardware state reject fault attachment with a
//! structured [`FaultAttachError`] instead of silently dropping faults.
//!
//! # Ordering contract
//!
//! Every backend must serve tags in ascending order with FIFO service
//! among duplicates (the circuit's FCFS tie-break), charge exactly one
//! storage slot of [`MemoryKind::slot_cycles`] cycles per insert and per
//! pop, and implement the same wrap semantics: under
//! [`CleanupPolicy::Lazy`] an insert below the live minimum (or below
//! the stale-marker maximum when drained) is a
//! [`SortError::BelowMinimum`], and [`SortBackend::recycle_section`]
//! clears a whole top-level section so the virtual clock can wrap into
//! it. Cross-check property tests in the scheduler crate and the CI
//! conformance matrix hold all backends to this contract.

use faultsim::{FaultAttachError, FaultComponent, FaultTarget};
use hwsim::ParityAlarm;

use crate::circuit::{
    CircuitStats, CleanupPolicy, IntegrityEvent, SectionScrub, SortError, SortRetrieveCircuit,
    TranslationScrub,
};
use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};
use crate::tagstore::{MemoryKind, StoreCorruption};

/// Everything needed to construct a sort backend.
///
/// This is the backend-agnostic subset of the scheduler's configuration:
/// the tag geometry, the link capacity, the marker cleanup policy, and
/// the storage-memory timing model the cycle accounting derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendSpec {
    /// Tag width and trie shape.
    pub geometry: Geometry,
    /// Maximum simultaneously stored tags.
    pub capacity: usize,
    /// When markers of departed values are cleared.
    pub cleanup: CleanupPolicy,
    /// Storage timing model (fixes the cycles-per-operation charge).
    pub memory: MemoryKind,
}

/// Resident/peak/total addressable state words of a backend, as reported
/// by [`SortBackend::resident_memory`].
///
/// "Words" are the backend's own addressable units summed across its
/// components (for the trie circuit: translation entries + tag-store link
/// words + trie node words). In paged mode `resident_words` tracks the
/// host memory actually materialized for the *live*-tag window, while
/// `total_words` is what an eager allocation of the full tag space would
/// cost; eager backends report all three equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidentMemory {
    /// Words currently materialized in host memory.
    pub resident_words: u64,
    /// High-water mark of `resident_words` over the backend's lifetime.
    pub peak_resident_words: u64,
    /// Words an eager allocation of the full state would occupy.
    pub total_words: u64,
}

/// A priority sorter the scheduler can drive: the narrow pop-min
/// interface of the paper's circuit, abstracted.
///
/// See the module-level docs above for the ordering/wrap contract and the
/// cross-checking story. Methods with default bodies are the
/// introspection hooks hardware-modeled backends override; software
/// backends inherit the inert defaults (no integrity events, no
/// addressable fault state).
pub trait SortBackend {
    /// Builds a fresh, empty backend from the spec.
    fn build(spec: &BackendSpec) -> Self
    where
        Self: Sized;

    /// Stable lowercase backend name (`trie`, `fastpath`, `heap`) used
    /// in CLI flags, reports, and fault-rejection errors.
    fn name(&self) -> &'static str;

    /// The tag geometry the backend was built with.
    fn geometry(&self) -> Geometry;

    /// Maximum simultaneously stored tags.
    fn capacity(&self) -> usize;

    /// Currently stored tags.
    fn len(&self) -> usize;

    /// Whether no tags are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts `tag` into the system with its packet reference, charging
    /// one storage slot.
    ///
    /// # Errors
    ///
    /// [`SortError::TagOutOfRange`] if the tag is too wide,
    /// [`SortError::Full`] at capacity, and — under
    /// [`CleanupPolicy::Lazy`] — [`SortError::BelowMinimum`] if the WFQ
    /// contract is violated.
    fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError>;

    /// Removes and returns the smallest tag (FIFO among duplicates),
    /// charging one storage slot.
    fn pop_min(&mut self) -> Option<(Tag, PacketRef)>;

    /// Removes and returns the **largest** tag (LIFO among duplicates —
    /// the most-recently-inserted departs), charging one storage slot.
    ///
    /// This is the push-out primitive of programmable admission (Alcoz
    /// et al.): when the buffer fills, the scheduler may evict the
    /// worst-ranked queued packet to admit a better-ranked arrival.
    /// Unlike [`SortBackend::pop_min`], marker cleanup is **always
    /// eager** here, even under [`CleanupPolicy::Lazy`]: a stale marker
    /// *above* the live set would win closest-match searches, so it must
    /// be cleared the moment the last duplicate of the maximum departs.
    fn pop_max(&mut self) -> Option<(Tag, PacketRef)>;

    /// The smallest stored tag, without removing it (no cycle charge).
    fn peek_min(&self) -> Option<(Tag, PacketRef)>;

    /// Bulk-deletes one wrapped top-level section (Fig. 6): clears its
    /// stale markers so the virtual clock can wrap into it. Returns the
    /// number of markers cleared. Costs no storage cycles.
    ///
    /// # Panics
    ///
    /// May panic (at least in debug builds) if live tags still occupy
    /// the section.
    fn recycle_section(&mut self, section: u32) -> usize;

    /// Total storage cycles consumed so far.
    fn cycles(&self) -> u64;

    /// Aggregated instrumentation snapshot.
    fn stats(&self) -> CircuitStats;

    /// Inserts a batch in order, stopping at the first error.
    ///
    /// Backends with cache-conscious layouts override this to amortize
    /// per-call overhead; the default just loops.
    ///
    /// # Errors
    ///
    /// As for [`SortBackend::insert`]; earlier items stay inserted.
    fn insert_batch(&mut self, items: &[(Tag, PacketRef)]) -> Result<(), SortError> {
        for &(tag, payload) in items {
            self.insert(tag, payload)?;
        }
        Ok(())
    }

    /// Pops up to `max` smallest tags into `out`, returning how many
    /// were popped.
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Tag, PacketRef)>) -> usize {
        let mut popped = 0;
        while popped < max {
            match self.pop_min() {
                Some(entry) => {
                    out.push(entry);
                    popped += 1;
                }
                None => break,
            }
        }
        popped
    }

    /// Enables or disables tolerant mode: invariant violations degrade
    /// and are logged instead of panicking. Inert for backends with no
    /// modeled corruption surface.
    fn set_tolerant(&mut self, _tolerant: bool) {}

    /// The fault-injection surface of one component.
    ///
    /// # Errors
    ///
    /// [`FaultAttachError`] if the backend keeps no addressable state
    /// for `component` — the default for software backends, so planned
    /// faults are rejected structurally rather than silently dropped.
    fn fault_target_mut(
        &mut self,
        component: FaultComponent,
    ) -> Result<&mut dyn FaultTarget, FaultAttachError> {
        Err(FaultAttachError {
            backend: self.name(),
            component,
        })
    }

    /// Audits one top-level section against the backend's ground truth,
    /// optionally repairing it. Backends without redundant occupancy
    /// state report a trivially clean audit.
    fn scrub_section(&mut self, section: u32, _repair: bool) -> SectionScrub {
        SectionScrub {
            section,
            words_checked: 0,
            mismatches: Vec::new(),
            repaired_markers: 0,
            repaired: false,
        }
    }

    /// Audits one translation-table section against its running check
    /// code, optionally repairing it (see
    /// [`SortRetrieveCircuit::scrub_translation_section`]). Backends
    /// without a translation table report a trivially clean audit.
    fn scrub_translation(&mut self, section: u32, _repair: bool) -> TranslationScrub {
        TranslationScrub {
            section,
            words_checked: 0,
            crc_mismatch: false,
            damaged_words: Vec::new(),
            repaired_entries: 0,
            repaired: false,
        }
    }

    /// Drains the integrity violations logged in tolerant mode.
    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        Vec::new()
    }

    /// Drains structural corruptions observed in the tag storage.
    fn take_store_corruptions(&mut self) -> Vec<StoreCorruption> {
        Vec::new()
    }

    /// Drains parity alarms raised by the modeled SRAM.
    fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        Vec::new()
    }

    /// Flattened fault-word index of occupancy node `(level, index)`,
    /// for reconciling integrity events against a fault ledger. Backends
    /// without an addressable occupancy array map everything to word 0.
    fn trie_fault_word_index(&self, _level: u32, _index: u32) -> usize {
        0
    }

    /// Switches an **empty** backend's off-chip state to lazily paged
    /// allocation, returning `true` if the backend supports paging.
    /// Backends without paged storage return `false` and stay eager —
    /// campaign drivers treat that as "resident == total".
    ///
    /// # Panics
    ///
    /// Implementations may panic if the backend is not empty.
    fn set_paged(&mut self) -> bool {
        false
    }

    /// Resident/peak/total addressable state words, when the backend
    /// accounts for them. `None` for backends without modeled state
    /// memory (the heap oracle, the FFS fastpath).
    fn resident_memory(&self) -> Option<ResidentMemory> {
        None
    }

    /// Removes **every** entry in service order (ascending tags, FIFO
    /// among duplicates) — the checkpoint walk. The default drains via
    /// [`SortBackend::pop_min`], so normal pop cycle accounting applies.
    fn drain_entries(&mut self) -> Vec<(Tag, PacketRef)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(entry) = self.pop_min() {
            out.push(entry);
        }
        out
    }

    /// Extracts the entries whose payload matches `belongs`, leaving
    /// everything else stored in its original service order — the
    /// migration primitive: one flow's queued tags leave the shard, the
    /// rest keep being served.
    ///
    /// The default drains the whole backend and reinserts the
    /// non-matching entries in pop order, which preserves both the
    /// ascending-tag order and the FIFO tie-break among duplicates. It
    /// therefore requires [`CleanupPolicy::Eager`] (under lazy cleanup
    /// the freshly cleared markers would gate the reinserts as
    /// [`SortError::BelowMinimum`]); live-migration callers run eager.
    ///
    /// # Panics
    ///
    /// Panics if a non-matching entry cannot be reinserted — with eager
    /// cleanup that indicates a backend contract violation, not an
    /// expected runtime condition.
    fn extract_flow(
        &mut self,
        belongs: &mut dyn FnMut(PacketRef) -> bool,
    ) -> Vec<(Tag, PacketRef)> {
        let mut keep = Vec::new();
        let mut taken = Vec::new();
        while let Some((tag, payload)) = self.pop_min() {
            if belongs(payload) {
                taken.push((tag, payload));
            } else {
                keep.push((tag, payload));
            }
        }
        for &(tag, payload) in &keep {
            self.insert(tag, payload)
                .expect("reinserting a just-popped entry cannot fail under eager cleanup");
        }
        taken
    }

    /// Installs a migrated flow's entries (already translated onto this
    /// backend's tag axis, ascending). The inverse of
    /// [`SortBackend::extract_flow`], running while the shard keeps
    /// serving — the default is just [`SortBackend::insert_batch`].
    ///
    /// # Errors
    ///
    /// As for [`SortBackend::insert`]; earlier entries stay installed.
    fn install_flow(&mut self, entries: &[(Tag, PacketRef)]) -> Result<(), SortError> {
        self.insert_batch(entries)
    }
}

impl SortBackend for SortRetrieveCircuit {
    fn build(spec: &BackendSpec) -> Self {
        SortRetrieveCircuit::with_policy_and_memory(
            spec.geometry,
            spec.capacity,
            spec.cleanup,
            spec.memory,
        )
    }

    fn name(&self) -> &'static str {
        "trie"
    }

    fn geometry(&self) -> Geometry {
        self.geometry()
    }

    fn capacity(&self) -> usize {
        self.capacity()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError> {
        self.insert(tag, payload)
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        self.pop_min()
    }

    fn pop_max(&mut self) -> Option<(Tag, PacketRef)> {
        self.pop_max()
    }

    fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.peek_min()
    }

    fn recycle_section(&mut self, section: u32) -> usize {
        self.recycle_section(section)
    }

    fn cycles(&self) -> u64 {
        self.cycles().value()
    }

    fn stats(&self) -> CircuitStats {
        self.stats()
    }

    fn set_tolerant(&mut self, tolerant: bool) {
        self.set_tolerant(tolerant);
    }

    fn fault_target_mut(
        &mut self,
        component: FaultComponent,
    ) -> Result<&mut dyn FaultTarget, FaultAttachError> {
        // The packet buffer lives in the scheduler, not the sorter; the
        // scheduler intercepts `Buffer` faults before reaching a backend.
        if component == FaultComponent::Buffer {
            return Err(FaultAttachError {
                backend: self.name(),
                component,
            });
        }
        Ok(self.fault_target_mut(component))
    }

    fn scrub_section(&mut self, section: u32, repair: bool) -> SectionScrub {
        self.scrub_section(section, repair)
    }

    fn scrub_translation(&mut self, section: u32, repair: bool) -> TranslationScrub {
        self.scrub_translation_section(section, repair)
    }

    fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        self.take_integrity_events()
    }

    fn take_store_corruptions(&mut self) -> Vec<StoreCorruption> {
        self.take_store_corruptions()
    }

    fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        self.take_parity_alarms()
    }

    fn trie_fault_word_index(&self, level: u32, index: u32) -> usize {
        self.trie_fault_word_index(level, index)
    }

    fn set_paged(&mut self) -> bool {
        self.set_paged();
        true
    }

    fn resident_memory(&self) -> Option<ResidentMemory> {
        Some(self.resident_memory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BackendSpec {
        BackendSpec {
            geometry: Geometry::paper(),
            capacity: 64,
            cleanup: CleanupPolicy::Eager,
            memory: MemoryKind::SinglePort,
        }
    }

    #[test]
    fn trie_builds_through_the_trait() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        assert_eq!(SortBackend::name(&b), "trie");
        assert_eq!(SortBackend::capacity(&b), 64);
        SortBackend::insert(&mut b, Tag(9), PacketRef(1)).unwrap();
        SortBackend::insert(&mut b, Tag(4), PacketRef(2)).unwrap();
        assert_eq!(SortBackend::peek_min(&b), Some((Tag(4), PacketRef(2))));
        assert_eq!(SortBackend::pop_min(&mut b), Some((Tag(4), PacketRef(2))));
        // One four-cycle slot per insert and per pop.
        assert_eq!(SortBackend::cycles(&b), 12);
    }

    #[test]
    fn trie_accepts_fault_attachment_for_every_sorter_component() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        for component in FaultComponent::ALL {
            if component == FaultComponent::Buffer {
                // The packet buffer is scheduler state, not sorter state.
                assert!(SortBackend::fault_target_mut(&mut b, component).is_err());
                continue;
            }
            let target = SortBackend::fault_target_mut(&mut b, component).unwrap();
            assert!(target.fault_words() > 0, "{component} has no words");
        }
    }

    #[test]
    fn paged_mode_reports_resident_below_total() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        assert!(SortBackend::set_paged(&mut b));
        let before = SortBackend::resident_memory(&b).unwrap();
        assert!(before.resident_words < before.total_words);
        SortBackend::insert(&mut b, Tag(9), PacketRef(1)).unwrap();
        let after = SortBackend::resident_memory(&b).unwrap();
        assert!(after.resident_words > before.resident_words);
        assert!(after.resident_words <= after.total_words);
        assert_eq!(after.peak_resident_words, after.resident_words);
    }

    #[test]
    fn pop_max_serves_lifo_among_duplicates() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        SortBackend::insert(&mut b, Tag(7), PacketRef(1)).unwrap();
        SortBackend::insert(&mut b, Tag(7), PacketRef(2)).unwrap();
        SortBackend::insert(&mut b, Tag(3), PacketRef(0)).unwrap();
        // Largest tag first; among the duplicate 7s the newest departs.
        assert_eq!(SortBackend::pop_max(&mut b), Some((Tag(7), PacketRef(2))));
        assert_eq!(SortBackend::pop_max(&mut b), Some((Tag(7), PacketRef(1))));
        // Min-side FIFO service is untouched, and each pop charged a slot.
        assert_eq!(SortBackend::pop_min(&mut b), Some((Tag(3), PacketRef(0))));
        assert_eq!(SortBackend::pop_max(&mut b), None);
        assert_eq!(SortBackend::cycles(&b), 24);
    }

    #[test]
    fn pop_max_reconciles_markers_even_under_lazy_cleanup() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&BackendSpec {
            cleanup: CleanupPolicy::Lazy,
            ..spec()
        });
        SortBackend::insert(&mut b, Tag(100), PacketRef(0)).unwrap();
        assert_eq!(SortBackend::pop_max(&mut b), Some((Tag(100), PacketRef(0))));
        // The marker went with the push-out: a restart below 100 is
        // legal, where a lazy pop_min would have left it gating.
        SortBackend::insert(&mut b, Tag(5), PacketRef(1)).unwrap();
        assert_eq!(SortBackend::pop_min(&mut b), Some((Tag(5), PacketRef(1))));
    }

    #[test]
    fn extract_flow_takes_one_flow_and_keeps_the_rest_in_order() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        // Even PacketRefs play flow A, odd ones flow B; duplicate tags
        // probe the FIFO tie-break across the reinsert.
        for (tag, pr) in [(7, 0), (3, 1), (7, 2), (3, 3), (9, 4)] {
            SortBackend::insert(&mut b, Tag(tag), PacketRef(pr)).unwrap();
        }
        let taken = b.extract_flow(&mut |p: PacketRef| p.0 % 2 == 1);
        assert_eq!(taken, vec![(Tag(3), PacketRef(1)), (Tag(3), PacketRef(3))]);
        assert_eq!(SortBackend::len(&b), 3);
        let rest = b.drain_entries();
        assert_eq!(
            rest,
            vec![
                (Tag(7), PacketRef(0)),
                (Tag(7), PacketRef(2)),
                (Tag(9), PacketRef(4)),
            ],
            "survivors must keep ascending order and FIFO among duplicates"
        );
    }

    #[test]
    fn install_flow_round_trips_an_extraction() {
        let src_spec = spec();
        let mut src = <SortRetrieveCircuit as SortBackend>::build(&src_spec);
        let mut dst = <SortRetrieveCircuit as SortBackend>::build(&src_spec);
        for (tag, pr) in [(5, 10), (2, 11), (5, 12)] {
            SortBackend::insert(&mut src, Tag(tag), PacketRef(pr)).unwrap();
        }
        SortBackend::insert(&mut dst, Tag(1), PacketRef(99)).unwrap();
        let taken = src.extract_flow(&mut |_| true);
        dst.install_flow(&taken).unwrap();
        assert!(SortBackend::is_empty(&src));
        assert_eq!(
            dst.drain_entries(),
            vec![
                (Tag(1), PacketRef(99)),
                (Tag(2), PacketRef(11)),
                (Tag(5), PacketRef(10)),
                (Tag(5), PacketRef(12)),
            ]
        );
    }

    #[test]
    fn batch_defaults_preserve_order() {
        let mut b = <SortRetrieveCircuit as SortBackend>::build(&spec());
        b.insert_batch(&[
            (Tag(7), PacketRef(0)),
            (Tag(3), PacketRef(1)),
            (Tag(7), PacketRef(2)),
        ])
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(b.pop_batch(8, &mut out), 3);
        // Ascending tags, FIFO among the duplicate 7s.
        assert_eq!(
            out,
            vec![
                (Tag(3), PacketRef(1)),
                (Tag(7), PacketRef(0)),
                (Tag(7), PacketRef(2)),
            ]
        );
    }
}
