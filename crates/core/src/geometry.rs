//! Tree geometry: levels, branching factor, and the memory-sizing
//! equations of paper §III-A.

use crate::tag::Tag;

/// Shape of the multi-bit search tree.
///
/// A geometry is `levels` tree levels of `2^literal_bits`-bit nodes; it
/// determines the tag width (`levels × literal_bits`), the branching
/// factor, and — through the paper's equations (2) and (3) — the tree
/// and translation-table memory budgets reported in Table II.
///
/// # Example
///
/// ```
/// use tagsort::Geometry;
///
/// let g = Geometry::paper(); // 3 levels × 16-bit nodes
/// assert_eq!(g.tag_bits(), 12);
/// assert_eq!(g.branching(), 16);
/// // §III-A: "the first two levels ... 272 bits in total" and
/// // "the third level is 4 kbits".
/// assert_eq!(g.tree_bits_at_level(0) + g.tree_bits_at_level(1), 272);
/// assert_eq!(g.tree_bits_at_level(2), 4096);
/// assert_eq!(g.translation_entries(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    literal_bits: u32,
    levels: u32,
}

impl Geometry {
    /// Creates a geometry of `levels` levels with `literal_bits`-bit
    /// literals (so nodes are `2^literal_bits` bits wide).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= literal_bits <= 6` (nodes of 2–64 bits) and
    /// `1 <= levels` with a total tag width of at most 30 bits.
    pub fn new(literal_bits: u32, levels: u32) -> Self {
        assert!(
            (1..=6).contains(&literal_bits),
            "literal width must be 1..=6 bits, got {literal_bits}"
        );
        assert!(levels >= 1, "tree must have at least one level");
        let tag_bits = literal_bits * levels;
        assert!(
            tag_bits <= 30,
            "tag width {tag_bits} too large (max 30 bits)"
        );
        Self {
            literal_bits,
            levels,
        }
    }

    /// The fabricated geometry: three levels of 16-bit nodes handling
    /// 12-bit words (paper §III-A).
    pub fn paper() -> Self {
        Self::new(4, 3)
    }

    /// The widened variant the paper discusses: 32-bit nodes and 15-bit
    /// words, with the 32-k-entry translation table it prices.
    pub fn paper_wide() -> Self {
        Self::new(5, 3)
    }

    /// Bits per literal.
    pub fn literal_bits(self) -> u32 {
        self.literal_bits
    }

    /// Number of tree levels.
    pub fn levels(self) -> u32 {
        self.levels
    }

    /// Branching factor — node width in bits (`2^literal_bits`).
    pub fn branching(self) -> u32 {
        1 << self.literal_bits
    }

    /// Tag width in bits.
    pub fn tag_bits(self) -> u32 {
        self.literal_bits * self.levels
    }

    /// Number of distinct tag values (and translation-table entries):
    /// the paper's `N_T = B^L`.
    pub fn tag_space(self) -> u64 {
        1u64 << self.tag_bits()
    }

    /// Number of nodes at `level` (0 = root).
    pub fn nodes_at_level(self, level: u32) -> u64 {
        assert!(level < self.levels, "level {level} out of range");
        1u64 << (self.literal_bits * level)
    }

    /// Paper eq. (2): memory, in bits, required at one tree level —
    /// `LM(l) = B^(l+1)` with the root counted as level 0.
    pub fn tree_bits_at_level(self, level: u32) -> u64 {
        self.nodes_at_level(level) * u64::from(self.branching())
    }

    /// Paper eq. (3): total tree memory in bits, summed over levels.
    pub fn tree_bits_total(self) -> u64 {
        (0..self.levels).map(|l| self.tree_bits_at_level(l)).sum()
    }

    /// Size of the translation table (one entry per representable tag).
    pub fn translation_entries(self) -> u64 {
        self.tag_space()
    }

    /// Number of top-level sections available for recycling (Fig. 6) —
    /// the branching factor: each bit of the root node isolates one
    /// section of the tag range.
    pub fn sections(self) -> u32 {
        self.branching()
    }

    /// The section (top-level literal) a tag belongs to.
    pub fn section_of(self, tag: Tag) -> u32 {
        tag.literal(0, self.literal_bits, self.levels)
    }

    /// Whether `tag` fits this geometry's width.
    pub fn contains(self, tag: Tag) -> bool {
        u64::from(tag.value()) < self.tag_space()
    }

    /// Worst-case node reads per tree lookup — the `W / log2(BF)` row of
    /// Table I.
    pub fn lookup_accesses(self) -> u32 {
        self.levels
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_numbers() {
        let g = Geometry::paper();
        assert_eq!(g.branching(), 16);
        assert_eq!(g.levels(), 3);
        assert_eq!(g.tag_bits(), 12);
        assert_eq!(g.tag_space(), 4096);
        assert_eq!(g.nodes_at_level(0), 1);
        assert_eq!(g.nodes_at_level(1), 16);
        assert_eq!(g.nodes_at_level(2), 256);
        // Upper two levels: 16 + 256 = 272 bits in registers (§III-A).
        assert_eq!(g.tree_bits_at_level(0) + g.tree_bits_at_level(1), 272);
        // Third level: 4 kbit of SRAM (§III-A).
        assert_eq!(g.tree_bits_at_level(2), 4096);
        assert_eq!(g.tree_bits_total(), 272 + 4096);
        assert_eq!(g.lookup_accesses(), 3);
        assert_eq!(g.sections(), 16);
    }

    #[test]
    fn wide_variant_matches_paper_discussion() {
        // "The width of the nodes could also be expanded to 32 bits to
        // enable 15-bit words ... a larger translation table with 32-k
        // entries."
        let g = Geometry::paper_wide();
        assert_eq!(g.branching(), 32);
        assert_eq!(g.tag_bits(), 15);
        assert_eq!(g.translation_entries(), 32 * 1024);
    }

    #[test]
    fn section_of_uses_top_literal() {
        let g = Geometry::paper();
        assert_eq!(g.section_of(Tag(0xabc)), 0xa);
        assert_eq!(g.section_of(Tag(0x00f)), 0);
    }

    #[test]
    fn contains_checks_width() {
        let g = Geometry::paper();
        assert!(g.contains(Tag(4095)));
        assert!(!g.contains(Tag(4096)));
    }

    #[test]
    fn binary_tree_special_case() {
        // A 1-bit-literal geometry is a plain binary tree: lookups cost
        // W accesses, the Table-I "tree" row.
        let g = Geometry::new(1, 12);
        assert_eq!(g.branching(), 2);
        assert_eq!(g.tag_bits(), 12);
        assert_eq!(g.lookup_accesses(), 12);
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn oversized_geometry_rejected() {
        let _ = Geometry::new(6, 6);
    }

    #[test]
    #[should_panic(expected = "literal width")]
    fn zero_literal_rejected() {
        let _ = Geometry::new(0, 3);
    }
}
