//! The multi-bit search tree (paper §III-A, Figs. 4–6).
//!
//! The tree stores one *tag marker* bit per tag value present in the
//! system, spread over `levels` levels of `B`-bit nodes. A search for an
//! incoming tag descends once, level by level; at each node the matching
//! circuitry returns both the primary match (exact literal, or the next
//! smaller one present) and a backup (the next set bit below the
//! primary). If the primary search dead-ends at some level, the deepest
//! recorded backup redirects the descent, after which every remaining
//! level follows its maximum set bit — yielding the closest existing tag
//! at or below the request in a single fixed-length pass.
//!
//! Memory-access accounting follows the paper's model: the primary and
//! backup searches proceed level-synchronized through *distributed* level
//! memories, so one lookup costs exactly `levels` node reads
//! (`W / log₂ BF`, the multi-bit-tree row of Table I) no matter which
//! path wins.

use faultsim::FaultTarget;
use hwsim::AccessStats;
use matcher::reference::{closest_match, leading_one};
use matcher::MatchResult;

use crate::geometry::Geometry;
use crate::tag::Tag;

/// A structural inconsistency met during a tolerant descent: a set bit
/// claimed a subtree, but the child node it points into is empty. This is
/// the signature of an SEU in a node occupancy word — healthy operation
/// maintains the invariant that every set bit covers a non-empty subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieDeadEnd {
    /// Level of the empty node (0 = root).
    pub level: u32,
    /// Node index within that level.
    pub index: u32,
}

/// The multi-bit trie of tag markers.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, MultiBitTrie, Tag};
///
/// // The paper's Fig. 4 example: a 6-bit tree of 2-bit literals storing
/// // 001001, 110101, and 110111.
/// let mut trie = MultiBitTrie::new(Geometry::new(2, 3));
/// trie.insert_marker(Tag(0b001001));
/// trie.insert_marker(Tag(0b110101));
/// trie.insert_marker(Tag(0b110111));
/// // Searching 110110 returns the closest match 110101.
/// assert_eq!(trie.closest_at_or_below(Tag(0b110110)), Some(Tag(0b110101)));
/// ```
#[derive(Debug, Clone)]
pub struct MultiBitTrie {
    geometry: Geometry,
    /// `nodes[l]` holds the occupancy words of level `l` (0 = root),
    /// indexed by the tag's `l`-literal prefix.
    nodes: Vec<Vec<u64>>,
    len: usize,
    stats: AccessStats,
}

impl MultiBitTrie {
    /// Creates an empty tree of the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let nodes = (0..geometry.levels())
            .map(|l| vec![0u64; geometry.nodes_at_level(l) as usize])
            .collect();
        Self {
            geometry,
            nodes,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    /// The tree geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Number of distinct tag values marked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no marker is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory-access statistics (reads/writes per operation).
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Whether `tag`'s marker is set.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn contains(&self, tag: Tag) -> bool {
        self.check(tag);
        let (level, _) = self.walk_exact(tag);
        level == self.geometry.levels()
    }

    /// Sets `tag`'s marker, returning `true` if it was newly set.
    ///
    /// Only the nodes whose bit was previously clear are written — in the
    /// common case (paper Fig. 4) a single node update.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn insert_marker(&mut self, tag: Tag) -> bool {
        self.check(tag);
        self.stats.begin_op();
        let b = self.geometry.literal_bits();
        let levels = self.geometry.levels();
        let mut prefix = 0usize;
        let mut added = false;
        for level in 0..levels {
            let lit = tag.literal(level, b, levels);
            let word = &mut self.nodes[level as usize][prefix];
            if *word & (1 << lit) == 0 {
                *word |= 1 << lit;
                self.stats.record_write();
                added = true;
            }
            prefix = (prefix << b) | lit as usize;
        }
        if added {
            self.len += 1;
        }
        added
    }

    /// Clears `tag`'s marker, returning `true` if it was set.
    ///
    /// Emptied nodes propagate the clear upward so that a set bit always
    /// guarantees a non-empty subtree — the invariant the backup path
    /// relies on ("the tree will always have a smaller value available").
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn remove_marker(&mut self, tag: Tag) -> bool {
        self.check(tag);
        if !self.contains(tag) {
            return false;
        }
        self.stats.begin_op();
        let b = self.geometry.literal_bits();
        let levels = self.geometry.levels();
        // Clear from the leaf level upward while nodes empty out.
        for level in (0..levels).rev() {
            let lit = tag.literal(level, b, levels);
            let prefix = (tag.value() >> ((levels - level) * b)) as usize;
            let word = &mut self.nodes[level as usize][prefix];
            *word &= !(1u64 << lit);
            self.stats.record_write();
            if *word != 0 {
                break;
            }
        }
        // Saturating: an injected fault may have cleared leaf bits behind
        // the counter's back, and the counter must degrade, not panic.
        self.len = self.len.saturating_sub(1);
        true
    }

    /// The closest marked tag at or below `tag`, in one descent.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn closest_at_or_below(&mut self, tag: Tag) -> Option<Tag> {
        let b = self.geometry.branching();
        self.closest_at_or_below_with(tag, |word, lit| closest_match(word, b, lit))
    }

    /// [`closest_at_or_below`](Self::closest_at_or_below) with an
    /// injectable per-node matcher — lets tests drive the descent through
    /// the gate-level matching circuits of the [`matcher`] crate instead
    /// of the software reference.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry, or if the matcher
    /// violates the closest-match contract.
    pub fn closest_at_or_below_with(
        &mut self,
        tag: Tag,
        mut node_match: impl FnMut(u64, u32) -> MatchResult,
    ) -> Option<Tag> {
        self.check(tag);
        self.stats.begin_op();
        // Paper access model: primary and backup searches run in parallel
        // through distributed level memories — one access per level.
        self.stats.record_batch(u64::from(self.geometry.levels()));
        let b = self.geometry.literal_bits();
        let levels = self.geometry.levels();
        let mut prefix = 0u32;
        // Deepest level that offered a backup literal, with the prefix
        // redirected through it.
        let mut backup: Option<(u32, u32)> = None;
        for level in 0..levels {
            let word = self.nodes[level as usize][prefix as usize];
            let lit = tag.literal(level, b, levels);
            let m = node_match(word, lit);
            match m.primary {
                Some(p) if p == lit => {
                    if let Some(bk) = m.backup {
                        backup = Some((level, (prefix << b) | bk));
                    }
                    prefix = (prefix << b) | lit;
                }
                Some(p) => {
                    // Next-smaller literal: all deeper levels return their
                    // maximum value (paper Fig. 4 rule).
                    return Some(self.max_descend(level + 1, (prefix << b) | p));
                }
                None => {
                    // Primary dead end (paper Fig. 5 point "A"): follow
                    // the deepest ancestor backup, then maxima.
                    return backup.map(|(blevel, bprefix)| self.max_descend(blevel + 1, bprefix));
                }
            }
        }
        Some(tag)
    }

    /// Fault-tolerant [`closest_at_or_below`](Self::closest_at_or_below):
    /// where the plain search would panic on a violated backup-path
    /// invariant (a set bit over an empty subtree — the signature of a
    /// corrupted node word), this variant reports the dead end instead.
    ///
    /// Access accounting is identical to the plain search.
    ///
    /// # Errors
    ///
    /// Returns the [`TrieDeadEnd`] describing the first empty node a
    /// descent was redirected into.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn closest_at_or_below_tolerant(&mut self, tag: Tag) -> Result<Option<Tag>, TrieDeadEnd> {
        self.check(tag);
        self.stats.begin_op();
        self.stats.record_batch(u64::from(self.geometry.levels()));
        let b = self.geometry.literal_bits();
        let bf = self.geometry.branching();
        let levels = self.geometry.levels();
        let mut prefix = 0u32;
        let mut backup: Option<(u32, u32)> = None;
        for level in 0..levels {
            let word = self.nodes[level as usize][prefix as usize];
            let lit = tag.literal(level, b, levels);
            let m = closest_match(word, bf, lit);
            match m.primary {
                Some(p) if p == lit => {
                    if let Some(bk) = m.backup {
                        backup = Some((level, (prefix << b) | bk));
                    }
                    prefix = (prefix << b) | lit;
                }
                Some(p) => {
                    return self
                        .max_descend_tolerant(level + 1, (prefix << b) | p)
                        .map(Some);
                }
                None => {
                    return match backup {
                        Some((blevel, bprefix)) => {
                            self.max_descend_tolerant(blevel + 1, bprefix).map(Some)
                        }
                        None => Ok(None),
                    };
                }
            }
        }
        Ok(Some(tag))
    }

    fn max_descend_tolerant(&self, from_level: u32, mut prefix: u32) -> Result<Tag, TrieDeadEnd> {
        let b = self.geometry.literal_bits();
        for level in from_level..self.geometry.levels() {
            let word = self.nodes[level as usize][prefix as usize];
            let top = leading_one(word).ok_or(TrieDeadEnd {
                level,
                index: prefix,
            })?;
            prefix = (prefix << b) | top;
        }
        Ok(Tag(prefix))
    }

    /// The occupancy word of one node, without access accounting — the
    /// scrubber's raw material (it audits state, it is not on the
    /// scheduling datapath the Table-I access model covers).
    pub(crate) fn node_word(&self, level: u32, index: u32) -> u64 {
        self.nodes[level as usize][index as usize]
    }

    /// Flattened word index of node `(level, index)` in the
    /// [`FaultTarget`] address space (levels concatenated root-first).
    pub fn fault_word_index(&self, level: u32, index: u32) -> usize {
        let mut offset = 0usize;
        for l in 0..level {
            offset += self.geometry.nodes_at_level(l) as usize;
        }
        offset + index as usize
    }

    /// [`closest_at_or_below`](Self::closest_at_or_below) that also
    /// returns the nodes visited — the raw material for memory-banking
    /// analysis (paper §IV: the leaf level is built from "32 small
    /// distributed memory blocks" precisely so the parallel primary and
    /// backup descents rarely contend for one block).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn closest_with_trace(&mut self, tag: Tag) -> (Option<Tag>, SearchTrace) {
        self.check(tag);
        let b = self.geometry.literal_bits();
        let bf = self.geometry.branching();
        let levels = self.geometry.levels();
        let mut visits = Vec::with_capacity(levels as usize + 2);
        let mut prefix = 0u32;
        let mut backup: Option<(u32, u32)> = None;
        let mut result = None;
        let mut resolved = false;
        self.stats.begin_op();
        self.stats.record_batch(u64::from(levels));
        for level in 0..levels {
            visits.push((level, prefix));
            let word = self.nodes[level as usize][prefix as usize];
            let lit = tag.literal(level, b, levels);
            let m = closest_match(word, bf, lit);
            match m.primary {
                Some(p) if p == lit => {
                    if let Some(bk) = m.backup {
                        backup = Some((level, (prefix << b) | bk));
                    }
                    prefix = (prefix << b) | lit;
                }
                Some(p) => {
                    result =
                        Some(self.max_descend_traced(level + 1, (prefix << b) | p, &mut visits));
                    resolved = true;
                    break;
                }
                None => {
                    result = backup.map(|(blevel, bprefix)| {
                        self.max_descend_traced(blevel + 1, bprefix, &mut visits)
                    });
                    resolved = true;
                    break;
                }
            }
        }
        if !resolved {
            result = Some(tag);
        }
        (result, SearchTrace { visits })
    }

    fn max_descend_traced(
        &self,
        from_level: u32,
        mut prefix: u32,
        visits: &mut Vec<(u32, u32)>,
    ) -> Tag {
        let b = self.geometry.literal_bits();
        for level in from_level..self.geometry.levels() {
            visits.push((level, prefix));
            let word = self.nodes[level as usize][prefix as usize];
            let top =
                leading_one(word).expect("backup-path invariant violated: descend into empty node");
            prefix = (prefix << b) | top;
        }
        Tag(prefix)
    }

    /// Bulk-deletes one top-level section (paper Fig. 6): the root bit is
    /// cleared and every child node under it is isolated at once, making
    /// the value range reusable when the virtual clock wraps. Returns the
    /// number of markers removed.
    ///
    /// The paper's hardware performs this as a single isolation step, so
    /// it is accounted as one root write.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn clear_section(&mut self, section: u32) -> usize {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        self.stats.begin_op();
        self.stats.record_write();
        let root_bit_was_set = self.nodes[0][0] & (1u64 << section) != 0;
        self.nodes[0][0] &= !(1u64 << section);
        let b = self.geometry.literal_bits();
        let mut removed = 0usize;
        let levels = self.geometry.levels();
        for level in 1..levels {
            // Nodes under `section` at this level occupy one contiguous
            // index range: prefixes starting with the section literal.
            let span = 1usize << (b * (level - 1));
            let start = (section as usize) << (b * (level - 1));
            for word in &mut self.nodes[level as usize][start..start + span] {
                if level == levels - 1 {
                    removed += word.count_ones() as usize;
                }
                *word = 0;
            }
        }
        if levels == 1 && root_bit_was_set {
            // Single-level tree: the root bit itself was the marker.
            removed = 1;
        }
        self.len = self.len.saturating_sub(removed);
        removed
    }

    /// Smallest marked tag, if any (a max/min descend, used by tests and
    /// the recycling policy).
    pub fn min(&self) -> Option<Tag> {
        self.extreme(|w| w.trailing_zeros())
    }

    /// Largest marked tag, if any.
    pub fn max(&self) -> Option<Tag> {
        self.extreme(|w| leading_one(w).unwrap_or(0))
    }

    fn extreme(&self, pick: impl Fn(u64) -> u32) -> Option<Tag> {
        if self.is_empty() {
            return None;
        }
        let b = self.geometry.literal_bits();
        let mut prefix = 0u32;
        for level in 0..self.geometry.levels() {
            let word = self.nodes[level as usize][prefix as usize];
            debug_assert_ne!(word, 0, "set bit with empty subtree");
            prefix = (prefix << b) | pick(word);
        }
        Some(Tag(prefix))
    }

    /// Descends from `from_level` under `prefix`, taking the maximum set
    /// literal at every remaining level.
    fn max_descend(&self, from_level: u32, mut prefix: u32) -> Tag {
        let b = self.geometry.literal_bits();
        for level in from_level..self.geometry.levels() {
            let word = self.nodes[level as usize][prefix as usize];
            let top =
                leading_one(word).expect("backup-path invariant violated: descend into empty node");
            prefix = (prefix << b) | top;
        }
        Tag(prefix)
    }

    /// Iterates the marked tag values in ascending order (a software
    /// traversal; no access accounting — diagnostics and tests).
    ///
    /// # Example
    ///
    /// ```
    /// use tagsort::{Geometry, MultiBitTrie, Tag};
    ///
    /// let mut t = MultiBitTrie::new(Geometry::paper());
    /// for v in [900u32, 4, 77] {
    ///     t.insert_marker(Tag(v));
    /// }
    /// let marked: Vec<u32> = t.iter_marked().map(|t| t.value()).collect();
    /// assert_eq!(marked, vec![4, 77, 900]);
    /// ```
    pub fn iter_marked(&self) -> IterMarked<'_> {
        IterMarked {
            trie: self,
            stack: vec![(0, 0, 0)],
        }
    }

    /// Walks the exact path of `tag`; returns how many levels matched and
    /// the last prefix.
    fn walk_exact(&self, tag: Tag) -> (u32, u32) {
        let b = self.geometry.literal_bits();
        let levels = self.geometry.levels();
        let mut prefix = 0u32;
        for level in 0..levels {
            let word = self.nodes[level as usize][prefix as usize];
            let lit = tag.literal(level, b, levels);
            if word & (1 << lit) == 0 {
                return (level, prefix);
            }
            prefix = (prefix << b) | lit;
        }
        (levels, prefix)
    }

    fn check(&self, tag: Tag) {
        assert!(
            self.geometry.contains(tag),
            "{tag} does not fit a {}-bit geometry",
            self.geometry.tag_bits()
        );
    }
}

impl FaultTarget for MultiBitTrie {
    fn fault_words(&self) -> usize {
        (0..self.geometry.levels())
            .map(|l| self.geometry.nodes_at_level(l) as usize)
            .sum()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        self.geometry.branching()
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        let mut remaining = word;
        let mut level = 0u32;
        while remaining >= self.geometry.nodes_at_level(level) as usize {
            remaining -= self.geometry.nodes_at_level(level) as usize;
            level += 1;
            assert!(
                level < self.geometry.levels(),
                "fault word {word} out of range"
            );
        }
        let slot = &mut self.nodes[level as usize][remaining];
        let old = *slot;
        *slot ^= mask & (u64::MAX >> (64 - self.geometry.branching()));
        // Leaf bits *are* the markers: keep the count consistent with what
        // a scrub-and-count would now observe. Upper-level flips corrupt
        // reachability, not the marker population.
        if level == self.geometry.levels() - 1 {
            let delta = slot.count_ones() as i64 - old.count_ones() as i64;
            self.len = (self.len as i64 + delta).max(0) as usize;
        }
        old
    }
}

/// The nodes one search touched: `(level, node index)` pairs, primary
/// descent first, then any backup/maximum descent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchTrace {
    /// Visited nodes in visit order.
    pub visits: Vec<(u32, u32)>,
}

impl SearchTrace {
    /// Node indices visited at `level`.
    pub fn at_level(&self, level: u32) -> impl Iterator<Item = u32> + '_ {
        self.visits
            .iter()
            .filter(move |&&(l, _)| l == level)
            .map(|&(_, n)| n)
    }
}

/// In-order iterator over a [`MultiBitTrie`]'s marked tags.
///
/// Produced by [`MultiBitTrie::iter_marked`].
#[derive(Debug, Clone)]
pub struct IterMarked<'a> {
    trie: &'a MultiBitTrie,
    /// Depth-first work stack: (level, node prefix, next literal to try).
    stack: Vec<(u32, u32, u32)>,
}

impl Iterator for IterMarked<'_> {
    type Item = Tag;

    fn next(&mut self) -> Option<Tag> {
        let g = self.trie.geometry;
        let b = g.literal_bits();
        while let Some((level, prefix, lit)) = self.stack.pop() {
            if lit >= g.branching() {
                continue; // node exhausted
            }
            let word = self.trie.nodes[level as usize][prefix as usize];
            // Find the next set literal at or after `lit`.
            let masked = word >> lit;
            if masked == 0 {
                continue;
            }
            let found = lit + masked.trailing_zeros();
            // Resume this node after `found` later.
            self.stack.push((level, prefix, found + 1));
            let child_prefix = (prefix << b) | found;
            if level + 1 == g.levels() {
                return Some(Tag(child_prefix));
            }
            self.stack.push((level + 1, child_prefix, 0));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn fig4_trie() -> MultiBitTrie {
        // 6-bit values, 2-bit literals, storing 001001, 110101, 110111.
        let mut t = MultiBitTrie::new(Geometry::new(2, 3));
        assert!(t.insert_marker(Tag(0b001001)));
        assert!(t.insert_marker(Tag(0b110101)));
        assert!(t.insert_marker(Tag(0b110111)));
        t
    }

    #[test]
    fn paper_fig4_walkthrough() {
        // "The final result is that the tree returns a closest match of
        // 110101 for the incoming tag 110110."
        let mut t = fig4_trie();
        assert_eq!(t.closest_at_or_below(Tag(0b110110)), Some(Tag(0b110101)));
    }

    #[test]
    fn paper_fig5_backup_path() {
        // Fig. 5 searches 110100: levels 1 and 2 match exactly, level 3
        // fails (no bit at or below "00"), and the backup path must
        // return the next lowest value — 001001 in the Fig. 4 tree.
        let mut t = fig4_trie();
        assert_eq!(t.closest_at_or_below(Tag(0b110100)), Some(Tag(0b001001)));
    }

    #[test]
    fn exact_match_returned_when_present() {
        let mut t = fig4_trie();
        assert_eq!(t.closest_at_or_below(Tag(0b110101)), Some(Tag(0b110101)));
        assert_eq!(t.closest_at_or_below(Tag(0b001001)), Some(Tag(0b001001)));
    }

    #[test]
    fn empty_tree_misses() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        assert_eq!(t.closest_at_or_below(Tag(4095)), None);
        assert!(t.is_empty());
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn miss_when_all_markers_above() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(100));
        assert_eq!(t.closest_at_or_below(Tag(99)), None);
        assert_eq!(t.closest_at_or_below(Tag(100)), Some(Tag(100)));
        assert_eq!(t.closest_at_or_below(Tag(101)), Some(Tag(100)));
    }

    #[test]
    fn insert_is_idempotent_and_counts() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        assert!(t.insert_marker(Tag(7)));
        assert!(!t.insert_marker(Tag(7)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(Tag(7)));
        assert!(!t.contains(Tag(8)));
    }

    #[test]
    fn remove_clears_upward() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(0x123));
        assert!(t.remove_marker(Tag(0x123)));
        assert!(!t.remove_marker(Tag(0x123)));
        assert!(t.is_empty());
        // The whole path must be clear again: a fresh search misses.
        assert_eq!(t.closest_at_or_below(Tag(0xfff)), None);
    }

    #[test]
    fn remove_keeps_shared_prefixes() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(0x120));
        t.insert_marker(Tag(0x121));
        t.remove_marker(Tag(0x121));
        assert!(t.contains(Tag(0x120)));
        assert_eq!(t.closest_at_or_below(Tag(0x12f)), Some(Tag(0x120)));
    }

    #[test]
    fn min_and_max() {
        let mut t = fig4_trie();
        assert_eq!(t.min(), Some(Tag(0b001001)));
        assert_eq!(t.max(), Some(Tag(0b110111)));
        t.insert_marker(Tag(0));
        assert_eq!(t.min(), Some(Tag(0)));
    }

    #[test]
    fn clear_section_removes_whole_range() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        // Section 0xa covers tags 0xa00..=0xaff.
        t.insert_marker(Tag(0xa00));
        t.insert_marker(Tag(0xa7f));
        t.insert_marker(Tag(0xaff));
        t.insert_marker(Tag(0xb00));
        assert_eq!(t.clear_section(0xa), 3);
        assert_eq!(t.len(), 1);
        assert!(!t.contains(Tag(0xa7f)));
        assert!(t.contains(Tag(0xb00)));
        // Searches in the cleared range fall through to nothing below.
        assert_eq!(t.closest_at_or_below(Tag(0xaff)), None);
    }

    #[test]
    fn clear_empty_section_is_noop() {
        let mut t = fig4_trie();
        let before = t.len();
        assert_eq!(t.clear_section(0b01), 0);
        assert_eq!(t.len(), before);
    }

    #[test]
    fn search_cost_is_levels_reads() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(5));
        t.reset_stats();
        let _ = t.closest_at_or_below(Tag(4095));
        assert_eq!(t.stats().worst_op_accesses(), 3);
        let _ = t.closest_at_or_below(Tag(0)); // miss — same fixed cost
        assert_eq!(t.stats().worst_op_accesses(), 3);
        assert_eq!(t.stats().mean_op_accesses(), 3.0);
    }

    /// Oracle equivalence: the trie's one-pass search with backup path is
    /// exactly `BTreeSet` predecessor-or-equal, across a dense random mix.
    #[test]
    fn matches_btreeset_oracle() {
        let geom = Geometry::new(2, 4); // 8-bit tags: exhaustive checks
        let mut t = MultiBitTrie::new(geom);
        let mut oracle = BTreeSet::new();
        // Deterministic pseudo-random insert/remove mix.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let v = (next() % 256) as u32;
            match next() % 3 {
                0 => {
                    assert_eq!(t.insert_marker(Tag(v)), oracle.insert(v));
                }
                1 => {
                    assert_eq!(t.remove_marker(Tag(v)), oracle.remove(&v));
                }
                _ => {
                    let got = t.closest_at_or_below(Tag(v));
                    let want = oracle.range(..=v).next_back().map(|&x| Tag(x));
                    assert_eq!(got, want, "query {v}, set {oracle:?}");
                }
            }
            assert_eq!(t.len(), oracle.len());
        }
        // Exhaustive final sweep.
        for v in 0..256u32 {
            let got = t.closest_at_or_below(Tag(v));
            let want = oracle.range(..=v).next_back().map(|&x| Tag(x));
            assert_eq!(got, want, "final sweep at {v}");
        }
    }

    #[test]
    fn iter_marked_matches_btreeset_in_order() {
        let mut t = MultiBitTrie::new(Geometry::new(2, 4)); // 8-bit
        let mut oracle = BTreeSet::new();
        let mut state = 0xfeedu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let v = (next() % 256) as u32;
            if next() % 4 == 0 {
                t.remove_marker(Tag(v));
                oracle.remove(&v);
            } else {
                t.insert_marker(Tag(v));
                oracle.insert(v);
            }
        }
        let got: Vec<u32> = t.iter_marked().map(|t| t.value()).collect();
        let want: Vec<u32> = oracle.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn iter_marked_empty_and_full_sections() {
        let t = MultiBitTrie::new(Geometry::paper());
        assert_eq!(t.iter_marked().count(), 0);
        let mut t = MultiBitTrie::new(Geometry::new(2, 2)); // 16 values
        for v in 0..16u32 {
            t.insert_marker(Tag(v));
        }
        let got: Vec<u32> = t.iter_marked().map(|t| t.value()).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn traced_search_agrees_with_plain_search() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        for v in [10u32, 300, 301, 2100, 4000] {
            t.insert_marker(Tag(v));
        }
        for probe in [0u32, 10, 11, 299, 305, 2100, 2101, 4095] {
            let plain = t.closest_at_or_below(Tag(probe));
            let (traced, trace) = t.closest_with_trace(Tag(probe));
            assert_eq!(plain, traced, "probe {probe}");
            // Every search starts at the root.
            assert_eq!(trace.visits[0], (0, 0));
            // At most two nodes per level (primary + one redirect).
            for level in 0..3 {
                assert!(trace.at_level(level).count() <= 2, "probe {probe}");
            }
        }
    }

    #[test]
    fn backup_search_touches_two_leaf_nodes() {
        // Fig. 5: the failing primary and the backup descent visit
        // different leaf-level nodes — the case distributed banks serve
        // in parallel.
        let mut t = MultiBitTrie::new(Geometry::new(2, 3));
        t.insert_marker(Tag(0b001001));
        t.insert_marker(Tag(0b110101));
        t.insert_marker(Tag(0b110111));
        let (res, trace) = t.closest_with_trace(Tag(0b110100));
        assert_eq!(res, Some(Tag(0b001001)));
        let leaf_nodes: Vec<u32> = trace.at_level(2).collect();
        assert_eq!(leaf_nodes.len(), 2);
        assert_ne!(leaf_nodes[0], leaf_nodes[1]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_tag_rejected() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(4096));
    }

    #[test]
    #[should_panic(expected = "section 16 out of range")]
    fn bad_section_rejected() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.clear_section(16);
    }

    #[test]
    fn fault_word_space_spans_all_levels() {
        let t = MultiBitTrie::new(Geometry::paper()); // 1 + 16 + 256 nodes
        assert_eq!(t.fault_words(), 273);
        assert_eq!(t.fault_word_bits(0), 16);
        assert_eq!(t.fault_word_index(0, 0), 0);
        assert_eq!(t.fault_word_index(1, 3), 4);
        assert_eq!(t.fault_word_index(2, 0), 17);
    }

    #[test]
    fn injected_leaf_fault_adjusts_len_and_is_searchable() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(0x123));
        // Flip the leaf bit of 0x123 off and the bit of 0x124 on.
        let leaf = t.fault_word_index(2, 0x12);
        let old = t.inject_fault(leaf, (1 << 0x3) | (1 << 0x4));
        assert_eq!(old, 1 << 0x3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.closest_at_or_below(Tag(0x130)), Some(Tag(0x124)));
    }

    #[test]
    fn tolerant_search_reports_dead_end_instead_of_panicking() {
        let mut t = MultiBitTrie::new(Geometry::paper());
        t.insert_marker(Tag(0x123));
        // Clear the leaf word under the set upper-level bits: the descent
        // is redirected into an empty node.
        t.inject_fault(t.fault_word_index(2, 0x12), 1 << 0x3);
        assert_eq!(
            t.closest_at_or_below_tolerant(Tag(0x200)),
            Err(TrieDeadEnd {
                level: 2,
                index: 0x12
            })
        );
        // A healthy tree answers tolerantly exactly like the plain search.
        let mut h = fig4_trie();
        assert_eq!(
            h.closest_at_or_below_tolerant(Tag(0b110110)),
            Ok(Some(Tag(0b110101)))
        );
        assert_eq!(h.closest_at_or_below_tolerant(Tag(0b000100)), Ok(None));
    }
}
