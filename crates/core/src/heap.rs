//! The binary-heap reference backend: the obviously-correct oracle.
//!
//! [`HeapSorter`] implements [`SortBackend`] with `std`'s
//! [`BinaryHeap`] and an insertion sequence number for the FCFS
//! tie-break. It models no hardware at all — no trie, no translation
//! table, no SRAM — which is the point: its behavior is simple enough
//! to trust by inspection, so the trie circuit and the FFS fast path
//! are cross-checked against it. It still honors the full backend
//! contract (slot-cycle accounting, lazy wrap semantics, section
//! recycling) so a scheduler driving it produces identical departure
//! sequences *and* identical sojourn stamps.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use crate::backend::{BackendSpec, SortBackend};
use crate::circuit::{CircuitStats, CleanupPolicy, SortError};
use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};
use hwsim::{AccessStats, SramStats};

/// A [`SortBackend`] backed by [`BinaryHeap`], for oracle testing.
///
/// # Example
///
/// ```
/// use tagsort::{
///     BackendSpec, CleanupPolicy, Geometry, HeapSorter, MemoryKind, PacketRef, SortBackend, Tag,
/// };
///
/// let mut heap = HeapSorter::build(&BackendSpec {
///     geometry: Geometry::paper(),
///     capacity: 16,
///     cleanup: CleanupPolicy::Eager,
///     memory: MemoryKind::SinglePort,
/// });
/// heap.insert(Tag(140), PacketRef(2)).unwrap();
/// heap.insert(Tag(17), PacketRef(1)).unwrap();
/// assert_eq!(heap.pop_min(), Some((Tag(17), PacketRef(1))));
/// ```
#[derive(Debug, Clone)]
pub struct HeapSorter {
    geometry: Geometry,
    capacity: usize,
    policy: CleanupPolicy,
    slot_cycles: u64,
    /// Min-heap of `(tag value, insertion seq, packet ref)`: the seq
    /// breaks tag ties first-come-first-served, matching the circuit's
    /// newest-at-translation / oldest-served-first linked-list order.
    heap: BinaryHeap<Reverse<(u32, u64, u32)>>,
    seq: u64,
    /// Live duplicate counts per tag value (ground truth for eager
    /// marker clearing and the recycle-section safety check).
    live: BTreeMap<u32, u32>,
    /// Marked values, including stale ones under lazy cleanup — the
    /// software stand-in for the trie's marker bits.
    markers: BTreeSet<u32>,
    cycles: u64,
    ops: u64,
    recycled_sections: u64,
    recycled_markers: u64,
}

impl SortBackend for HeapSorter {
    fn build(spec: &BackendSpec) -> Self {
        HeapSorter {
            geometry: spec.geometry,
            capacity: spec.capacity,
            policy: spec.cleanup,
            slot_cycles: spec.memory.slot_cycles(),
            heap: BinaryHeap::new(),
            seq: 0,
            live: BTreeMap::new(),
            markers: BTreeSet::new(),
            cycles: 0,
            ops: 0,
            recycled_sections: 0,
            recycled_markers: 0,
        }
    }

    fn name(&self) -> &'static str {
        "heap"
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError> {
        if !self.geometry.contains(tag) {
            return Err(SortError::TagOutOfRange {
                tag,
                tag_bits: self.geometry.tag_bits(),
            });
        }
        if self.policy == CleanupPolicy::Lazy {
            // The same wrap contract as the trie: a drained system must
            // restart at or above the highest stale marker, and a live
            // system rejects tags below its minimum.
            if let Some(&Reverse((minimum, _, _))) = self.heap.peek() {
                if tag.value() < minimum {
                    return Err(SortError::BelowMinimum {
                        tag,
                        minimum: Tag(minimum),
                    });
                }
            } else if let Some(&stale_max) = self.markers.last() {
                if tag.value() < stale_max {
                    return Err(SortError::BelowMinimum {
                        tag,
                        minimum: Tag(stale_max),
                    });
                }
            }
        }
        if self.heap.len() == self.capacity {
            return Err(SortError::Full {
                capacity: self.capacity,
            });
        }
        self.heap.push(Reverse((tag.value(), self.seq, payload.0)));
        self.seq += 1;
        *self.live.entry(tag.value()).or_insert(0) += 1;
        self.markers.insert(tag.value());
        self.cycles += self.slot_cycles;
        self.ops += 1;
        Ok(())
    }

    fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let Reverse((value, _, payload)) = self.heap.pop()?;
        let count = self
            .live
            .get_mut(&value)
            .expect("live count for popped tag");
        *count -= 1;
        if *count == 0 {
            self.live.remove(&value);
            if self.policy == CleanupPolicy::Eager {
                self.markers.remove(&value);
            }
        }
        self.cycles += self.slot_cycles;
        self.ops += 1;
        Some((Tag(value), PacketRef(payload)))
    }

    fn pop_max(&mut self) -> Option<(Tag, PacketRef)> {
        // O(n) rebuild — fine for an oracle. LIFO among duplicates of
        // the maximum: the largest (tag, seq) pair is exactly the
        // most-recently-inserted instance of the largest tag.
        let target = self.heap.iter().map(|&Reverse(e)| e).max()?;
        let (value, _, payload) = target;
        let remaining: Vec<_> = self
            .heap
            .drain()
            .filter(|&Reverse(e)| e != target)
            .collect();
        self.heap = remaining.into();
        let count = self
            .live
            .get_mut(&value)
            .expect("live count for popped tag");
        *count -= 1;
        if *count == 0 {
            self.live.remove(&value);
            // Always eager (see the trait contract): a stale marker
            // above the live set must never survive a push-out.
            self.markers.remove(&value);
        }
        self.cycles += self.slot_cycles;
        self.ops += 1;
        Some((Tag(value), PacketRef(payload)))
    }

    fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.heap
            .peek()
            .map(|&Reverse((value, _, payload))| (Tag(value), PacketRef(payload)))
    }

    fn recycle_section(&mut self, section: u32) -> usize {
        let span = (self.geometry.tag_space() / u64::from(self.geometry.sections())) as u32;
        let lo = section * span;
        let hi = lo + span;
        debug_assert!(
            self.live.range(lo..hi).next().is_none(),
            "recycling section {section} with live tags"
        );
        let stale: Vec<u32> = self.markers.range(lo..hi).copied().collect();
        for value in &stale {
            self.markers.remove(value);
        }
        self.recycled_sections += 1;
        self.recycled_markers += stale.len() as u64;
        stale.len()
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn stats(&self) -> CircuitStats {
        CircuitStats {
            ops: self.ops,
            store_cycles: self.cycles,
            trie: AccessStats::new(),
            translation: AccessStats::new(),
            sram: SramStats::default(),
            recycled_sections: self.recycled_sections,
            recycled_markers: self.recycled_markers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SortRetrieveCircuit;
    use crate::tagstore::MemoryKind;

    fn spec(cleanup: CleanupPolicy) -> BackendSpec {
        BackendSpec {
            geometry: Geometry::paper(),
            capacity: 64,
            cleanup,
            memory: MemoryKind::SinglePort,
        }
    }

    #[test]
    fn sorts_with_fifo_tie_break() {
        let mut h = HeapSorter::build(&spec(CleanupPolicy::Eager));
        for (i, t) in [500u32, 3, 1000, 3, 999, 3].iter().enumerate() {
            h.insert(Tag(*t), PacketRef(i as u32)).unwrap();
        }
        let drained: Vec<(u32, u32)> = std::iter::from_fn(|| h.pop_min())
            .map(|(t, p)| (t.value(), p.index()))
            .collect();
        assert_eq!(
            drained,
            vec![(3, 1), (3, 3), (3, 5), (500, 0), (999, 4), (1000, 2)]
        );
        assert!(h.is_empty());
    }

    #[test]
    fn extract_and_install_move_one_flow_between_heaps() {
        let mut src = HeapSorter::build(&spec(CleanupPolicy::Eager));
        let mut dst = HeapSorter::build(&spec(CleanupPolicy::Eager));
        for (t, p) in [(9u32, 0u32), (4, 1), (9, 2), (4, 3)] {
            src.insert(Tag(t), PacketRef(p)).unwrap();
        }
        let taken = src.extract_flow(&mut |p: PacketRef| p.index().is_multiple_of(2));
        assert_eq!(taken, vec![(Tag(9), PacketRef(0)), (Tag(9), PacketRef(2))]);
        dst.install_flow(&taken).unwrap();
        assert_eq!(
            src.drain_entries(),
            vec![(Tag(4), PacketRef(1)), (Tag(4), PacketRef(3))]
        );
        assert_eq!(dst.drain_entries(), taken);
    }

    #[test]
    fn charges_one_slot_per_operation() {
        for (memory, slot) in [(MemoryKind::SinglePort, 4u64), (MemoryKind::QdrLike, 2)] {
            let mut h = HeapSorter::build(&BackendSpec {
                memory,
                ..spec(CleanupPolicy::Eager)
            });
            h.insert(Tag(5), PacketRef(0)).unwrap();
            h.pop_min().unwrap();
            assert_eq!(h.cycles(), 2 * slot);
            assert_eq!(h.stats().cycles_per_op(), slot as f64);
        }
    }

    #[test]
    fn error_contract_matches_the_circuit() {
        let mut h = HeapSorter::build(&BackendSpec {
            capacity: 2,
            ..spec(CleanupPolicy::Eager)
        });
        assert_eq!(
            h.insert(Tag(1 << 12), PacketRef(0)),
            Err(SortError::TagOutOfRange {
                tag: Tag(1 << 12),
                tag_bits: 12
            })
        );
        h.insert(Tag(1), PacketRef(0)).unwrap();
        h.insert(Tag(2), PacketRef(1)).unwrap();
        assert_eq!(
            h.insert(Tag(3), PacketRef(2)),
            Err(SortError::Full { capacity: 2 })
        );
    }

    #[test]
    fn lazy_wrap_semantics_match_the_circuit() {
        let mk = |cleanup| {
            (
                HeapSorter::build(&spec(cleanup)),
                <SortRetrieveCircuit as SortBackend>::build(&spec(cleanup)),
            )
        };
        let (mut h, mut c) = mk(CleanupPolicy::Lazy);
        for b in [&mut h as &mut dyn SortBackend, &mut c] {
            b.insert(Tag(100), PacketRef(0)).unwrap();
            // Below the live minimum: rejected.
            assert_eq!(
                b.insert(Tag(50), PacketRef(1)),
                Err(SortError::BelowMinimum {
                    tag: Tag(50),
                    minimum: Tag(100)
                })
            );
            b.pop_min().unwrap();
            // Drained, but the stale marker still gates restarts.
            assert_eq!(
                b.insert(Tag(50), PacketRef(1)),
                Err(SortError::BelowMinimum {
                    tag: Tag(50),
                    minimum: Tag(100)
                })
            );
            // Recycling the stale section clears the way.
            let section = Geometry::paper().section_of(Tag(100));
            assert_eq!(b.recycle_section(section), 1);
            b.insert(Tag(50), PacketRef(1)).unwrap();
            assert_eq!(b.pop_min(), Some((Tag(50), PacketRef(1))));
        }
        // Eager cleanup never raises BelowMinimum and recycles nothing.
        let (mut h, mut c) = mk(CleanupPolicy::Eager);
        for b in [&mut h as &mut dyn SortBackend, &mut c] {
            b.insert(Tag(100), PacketRef(0)).unwrap();
            b.pop_min().unwrap();
            b.insert(Tag(50), PacketRef(1)).unwrap();
            b.pop_min().unwrap();
            assert_eq!(b.recycle_section(0), 0);
        }
    }

    #[test]
    fn fault_attachment_is_rejected_structurally() {
        use faultsim::{FaultAttachError, FaultComponent};
        let mut h = HeapSorter::build(&spec(CleanupPolicy::Eager));
        let err = h.fault_target_mut(FaultComponent::Trie).err().unwrap();
        assert_eq!(
            err,
            FaultAttachError {
                backend: "heap",
                component: FaultComponent::Trie,
            }
        );
        assert_eq!(
            err.to_string(),
            "backend `heap` has no addressable trie state to fault"
        );
    }
}
