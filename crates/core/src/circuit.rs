//! The integrated tag sort/retrieve circuit (paper Fig. 3).

use std::error::Error;
use std::fmt;

use faultsim::{FaultComponent, FaultTarget};
use hwsim::{AccessStats, Cycle, ParityAlarm, SramStats};

use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};
use crate::tagstore::{LinkAddr, StoreCorruption, TagStore};
use crate::translation::TranslationTable;
use crate::trie::MultiBitTrie;

/// A state-integrity violation observed on the datapath in tolerant mode.
///
/// Each variant is a symptom whose only healthy-operation cause is a
/// corrupted word: the circuit's invariants rule them out otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityEvent {
    /// A trie descent was redirected into an empty node (see
    /// [`crate::TrieDeadEnd`]).
    TrieDeadEnd {
        /// Level of the empty node.
        level: u32,
        /// Node index within that level.
        index: u32,
    },
    /// The trie returned a marked value with no translation entry.
    MissingTranslation {
        /// The marked value whose entry was absent.
        tag: Tag,
    },
    /// A translation entry pointed outside the tag store.
    BadLinkAddr {
        /// The value whose entry was invalid.
        tag: Tag,
        /// The out-of-range address it held.
        addr: LinkAddr,
    },
}

/// One trie node whose occupancy word disagreed with the translation
/// table during a scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieMismatch {
    /// Level of the disagreeing node.
    pub level: u32,
    /// Node index within that level.
    pub index: u32,
    /// Flattened [`FaultTarget`] word index of the node (for ledger
    /// reconciliation).
    pub flat: usize,
    /// The word the translation table implies.
    pub expected: u64,
    /// The word actually stored.
    pub found: u64,
}

/// Result of auditing one trie section against translation ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionScrub {
    /// The audited section.
    pub section: u32,
    /// Node words compared (the scrub's modelled read cost).
    pub words_checked: u64,
    /// Disagreements found, root-first.
    pub mismatches: Vec<TrieMismatch>,
    /// Markers re-inserted by the repair (0 unless repairing).
    pub repaired_markers: u64,
    /// Whether a repair pass ran.
    pub repaired: bool,
}

/// Result of auditing one translation-table section against its running
/// per-section check code (see
/// [`TranslationTable::verify_section_crc`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationScrub {
    /// The audited section.
    pub section: u32,
    /// Entry words compared (the scrub's modelled read cost; 1 when the
    /// check code already matched).
    pub words_checked: u64,
    /// Whether the running check code disagreed with a recomputation —
    /// i.e. at least one write bypassed the datapath since the last
    /// resync.
    pub crc_mismatch: bool,
    /// Entries that disagree with ground truth, as flattened
    /// [`FaultTarget`] word indices (= tag values). Empty under lazy
    /// cleanup — stale entries of departed values are legitimate there,
    /// so the tag-store walk is not ground truth and the scrub is
    /// detect-only — and empty when the damaged word was later
    /// legitimately overwritten (the code latches, the content healed).
    pub damaged_words: Vec<usize>,
    /// Entries rewritten by the repair (0 unless repairing).
    pub repaired_entries: u64,
    /// Whether a repair pass ran (under lazy cleanup it only re-latches
    /// the check code onto the surviving content).
    pub repaired: bool,
}

/// When tree markers of fully departed tag values are cleared.
///
/// The paper's hardware leaves markers in place when tags depart and
/// reclaims them in bulk by recycling whole top-level sections as the
/// virtual clock wraps (Fig. 6). That is correct under the WFQ contract —
/// every new tag is at or above the smallest tag in the system, so any
/// live minimum shadows the stale markers below it — but it makes the
/// circuit *depend* on that contract. This crate implements both options:
///
/// * [`Lazy`](CleanupPolicy::Lazy) — the paper's design, verbatim.
///   Requires WFQ-conforming inserts and periodic
///   [`SortRetrieveCircuit::recycle_section`] calls before tag values are
///   reused.
/// * [`Eager`](CleanupPolicy::Eager) — additionally compares the popped
///   link's address against the translation table and clears the marker
///   when the last instance of a value departs (one on-chip translation
///   read per pop, in parallel with the storage slot). Correct for
///   arbitrary insert patterns; the default for the general-purpose API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleanupPolicy {
    /// Clear markers as the last duplicate of a value departs.
    #[default]
    Eager,
    /// Leave markers for bulk section recycling, as fabricated.
    Lazy,
}

/// Errors returned by [`SortRetrieveCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortError {
    /// The tag does not fit the configured geometry.
    TagOutOfRange {
        /// The offending tag.
        tag: Tag,
        /// The geometry's tag width.
        tag_bits: u32,
    },
    /// The tag storage memory has no free link.
    Full {
        /// Configured capacity in links.
        capacity: usize,
    },
    /// Under [`CleanupPolicy::Lazy`], the tag violates the WFQ contract
    /// (it is below the current minimum), which the paper's circuit
    /// cannot sort correctly.
    BelowMinimum {
        /// The offending tag.
        tag: Tag,
        /// The current smallest stored tag.
        minimum: Tag,
    },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::TagOutOfRange { tag, tag_bits } => {
                write!(f, "{tag} does not fit a {tag_bits}-bit geometry")
            }
            SortError::Full { capacity } => {
                write!(f, "tag storage memory full ({capacity} links)")
            }
            SortError::BelowMinimum { tag, minimum } => {
                write!(
                    f,
                    "{tag} is below the current minimum ({minimum}); lazy cleanup requires WFQ-ordered tags"
                )
            }
        }
    }
}

impl Error for SortError {}

/// Aggregated instrumentation across the circuit's three components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitStats {
    /// Logical operations (inserts + pops + combined slots).
    pub ops: u64,
    /// Clock cycles consumed by the tag storage memory FSM.
    pub store_cycles: u64,
    /// Search-tree access counters.
    pub trie: AccessStats,
    /// Translation-table access counters.
    pub translation: AccessStats,
    /// External SRAM (tag storage) counters.
    pub sram: SramStats,
    /// Fig. 6 recycling: sections bulk-deleted via
    /// [`SortRetrieveCircuit::recycle_section`].
    pub recycled_sections: u64,
    /// Fig. 6 recycling: total stale tree markers those deletions
    /// cleared (always 0 under eager cleanup).
    pub recycled_markers: u64,
}

impl CircuitStats {
    /// Mean storage cycles per operation — the paper's fixed-throughput
    /// claim is that this equals 4 exactly.
    pub fn cycles_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.store_cycles as f64 / self.ops as f64
        }
    }

    /// Packets per second at a given circuit clock (Table II derivation:
    /// 143.2 MHz / 4 cycles ⇒ 35.8 Mpps).
    pub fn packets_per_second(&self, clock_hz: f64) -> f64 {
        let cpo = self.cycles_per_op();
        if cpo == 0.0 {
            0.0
        } else {
            clock_hz / cpo
        }
    }

    /// Line rate in bits per second for a mean packet size (§IV uses a
    /// conservative 140-byte average IP packet ⇒ 40 Gb/s).
    pub fn line_rate_bps(&self, clock_hz: f64, mean_packet_bytes: f64) -> f64 {
        self.packets_per_second(clock_hz) * mean_packet_bytes * 8.0
    }
}

/// The clock frequency of the fabricated circuit implied by Table II's
/// throughput (35.8 Mpps × 4 cycles per packet).
pub const PAPER_CLOCK_HZ: f64 = 143.2e6;

/// The paper's conservative estimate for an average IP packet, in bytes.
pub const PAPER_MEAN_PACKET_BYTES: f64 = 140.0;

/// The complete tag sort/retrieve circuit: search tree + translation
/// table + tag storage memory, wired as in paper Fig. 3.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};
///
/// # fn main() -> Result<(), tagsort::SortError> {
/// let mut c = SortRetrieveCircuit::new(Geometry::paper(), 256);
/// for (i, t) in [30u32, 10, 20, 10].iter().enumerate() {
///     c.insert(Tag(*t), PacketRef(i as u32))?;
/// }
/// // Duplicate 10s come out first-come-first-served.
/// assert_eq!(c.pop_min(), Some((Tag(10), PacketRef(1))));
/// assert_eq!(c.pop_min(), Some((Tag(10), PacketRef(3))));
/// assert_eq!(c.pop_min(), Some((Tag(20), PacketRef(2))));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SortRetrieveCircuit {
    geometry: Geometry,
    trie: MultiBitTrie,
    translation: TranslationTable,
    store: TagStore,
    policy: CleanupPolicy,
    ops: u64,
    recycled_sections: u64,
    recycled_markers: u64,
    /// Tolerant mode: datapath invariant violations are logged as
    /// [`IntegrityEvent`]s and degraded around instead of panicking.
    tolerant: bool,
    integrity_log: Vec<IntegrityEvent>,
}

impl SortRetrieveCircuit {
    /// Creates a circuit with [`CleanupPolicy::Eager`] and room for
    /// `capacity` tags.
    pub fn new(geometry: Geometry, capacity: usize) -> Self {
        Self::with_policy(geometry, capacity, CleanupPolicy::Eager)
    }

    /// Creates a circuit with an explicit cleanup policy.
    pub fn with_policy(geometry: Geometry, capacity: usize, policy: CleanupPolicy) -> Self {
        Self::with_policy_and_memory(
            geometry,
            capacity,
            policy,
            crate::tagstore::MemoryKind::SinglePort,
        )
    }

    /// Creates a circuit with explicit cleanup policy and tag-storage
    /// memory technology (the paper's QDR variant halves the slot to two
    /// cycles; see [`crate::MemoryKind`]).
    pub fn with_policy_and_memory(
        geometry: Geometry,
        capacity: usize,
        policy: CleanupPolicy,
        memory: crate::tagstore::MemoryKind,
    ) -> Self {
        Self {
            geometry,
            trie: MultiBitTrie::new(geometry),
            translation: TranslationTable::new(geometry),
            store: TagStore::with_geometry_and_memory(geometry, capacity, memory),
            policy,
            ops: 0,
            recycled_sections: 0,
            recycled_markers: 0,
            tolerant: false,
            integrity_log: Vec::new(),
        }
    }

    /// The tree geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The cleanup policy in force.
    pub fn policy(&self) -> CleanupPolicy {
        self.policy
    }

    /// Number of stored tags.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no tag is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Storage capacity in tags.
    pub fn capacity(&self) -> usize {
        self.store.capacity()
    }

    /// The smallest stored tag and its packet reference — register-fast,
    /// feeding the scheduler's eq. (1) continuously.
    pub fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.store.peek_min()
    }

    /// Total tag-storage cycles consumed.
    pub fn cycles(&self) -> Cycle {
        self.store.cycles()
    }

    /// Aggregated instrumentation.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            ops: self.ops,
            store_cycles: self.store.cycles().value(),
            trie: *self.trie.stats(),
            translation: *self.translation.stats(),
            sram: self.store.sram_stats(),
            recycled_sections: self.recycled_sections,
            recycled_markers: self.recycled_markers,
        }
    }

    /// Sorts `tag` into the system with its packet reference.
    ///
    /// One four-cycle storage slot; the tree search and translation
    /// lookup execute in the pipeline stage ahead of it (paper §III-A:
    /// the two stages are balanced at four cycles each).
    ///
    /// # Errors
    ///
    /// [`SortError::TagOutOfRange`] if the tag is too wide,
    /// [`SortError::Full`] if no link is free, and — under lazy cleanup —
    /// [`SortError::BelowMinimum`] if the WFQ contract is violated.
    pub fn insert(&mut self, tag: Tag, payload: PacketRef) -> Result<(), SortError> {
        let prev = self.locate_predecessor(tag)?;
        let addr = self
            .store
            .insert(prev, tag, payload)
            .map_err(|e| SortError::Full {
                capacity: e.capacity,
            })?;
        self.commit_insert(tag, addr);
        self.ops += 1;
        Ok(())
    }

    /// Removes and returns the smallest tag, in one four-cycle slot.
    pub fn pop_min(&mut self) -> Option<(Tag, PacketRef)> {
        let (tag, payload, addr) = self.store.pop_min()?;
        self.reconcile_pop(tag, addr);
        self.ops += 1;
        Some((tag, payload))
    }

    /// Removes and returns the **largest** stored tag in one four-cycle
    /// slot — the push-out primitive of programmable admission (Alcoz et
    /// al.): evict the worst queued packet to admit a better arrival.
    /// Among duplicates of the maximum, the most-recently-inserted
    /// departs (LIFO at the tail; the translation table already points
    /// at it).
    ///
    /// Reconciliation is always eager here, even under
    /// [`CleanupPolicy::Lazy`]: a stale marker *above* the live set
    /// would win closest-match searches and dereference a freed link,
    /// so the marker must go the moment the last duplicate departs.
    pub fn pop_max(&mut self) -> Option<(Tag, PacketRef)> {
        let (tag, payload, addr, pred) = self.store.pop_max()?;
        debug_assert!(
            self.tolerant || self.translation.get(tag) == Some(addr),
            "translation should point at the newest instance of the maximum"
        );
        match pred {
            // An older duplicate remains: it becomes the newest instance.
            Some((pred_addr, pred_tag)) if pred_tag == tag => {
                self.translation.set(tag, pred_addr);
            }
            _ => {
                self.translation.clear(tag);
                self.trie.remove_marker(tag);
            }
        }
        self.ops += 1;
        Some((tag, payload))
    }

    /// The simultaneous case of paper §III-C: serves the smallest tag and
    /// sorts `tag` in, in a *single* four-cycle slot, reusing the freed
    /// link.
    ///
    /// # Errors
    ///
    /// As for [`SortRetrieveCircuit::insert`].
    pub fn insert_and_pop(
        &mut self,
        tag: Tag,
        payload: PacketRef,
    ) -> Result<Option<(Tag, PacketRef)>, SortError> {
        let prev = self.locate_predecessor(tag)?;
        if prev.is_none() {
            // No stored value at or below the incoming tag: it is the
            // union minimum (strictly below the head, or the store is
            // empty) and departs in the same slot it arrived —
            // cut-through; the storage memory is never touched but the
            // slot is still consumed.
            self.store.pass_slot();
            self.ops += 1;
            return Ok(Some((tag, payload)));
        }
        let (addr, popped) =
            self.store
                .insert_and_pop(prev, tag, payload)
                .map_err(|e| SortError::Full {
                    capacity: e.capacity,
                })?;
        let served = popped.map(|(ptag, ppayload, paddr)| {
            self.reconcile_pop(ptag, paddr);
            (ptag, ppayload)
        });
        self.commit_insert(tag, addr);
        self.ops += 1;
        Ok(served)
    }

    /// Bulk-recycles one top-level section of the tag range (Fig. 6),
    /// clearing its tree markers and translation entries so the WFQ
    /// virtual clock can wrap into it. Returns the number of markers
    /// cleared (always 0 under eager cleanup — the safety net is the
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if any *live* tag still occupies the section (debug builds
    /// scan the store; release builds check the cheap head/section
    /// bound).
    pub fn recycle_section(&mut self, section: u32) -> usize {
        debug_assert!(
            !self
                .store
                .iter_sorted()
                .any(|(t, _)| self.geometry.section_of(t) == section),
            "recycling section {section} with live tags"
        );
        let removed = self.trie.clear_section(section);
        self.translation.clear_section(section);
        self.recycled_sections += 1;
        self.recycled_markers += removed as u64;
        removed
    }

    /// Read-only view of the sorted contents (test/debug; no cycle
    /// accounting).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Tag, PacketRef)> + '_ {
        self.store.iter_sorted()
    }

    /// The largest stored tag value at or below `tag` — the tree's
    /// closest-match query, exposed for diagnostics and pipeline hazard
    /// analysis. Counts as a tree lookup in the access statistics.
    ///
    /// # Errors
    ///
    /// [`SortError::TagOutOfRange`] if the tag is too wide.
    pub fn predecessor(&mut self, tag: Tag) -> Result<Option<Tag>, SortError> {
        if !self.geometry.contains(tag) {
            return Err(SortError::TagOutOfRange {
                tag,
                tag_bits: self.geometry.tag_bits(),
            });
        }
        Ok(self.trie.closest_at_or_below(tag))
    }

    /// Enables or disables tolerant mode on the circuit and its tag
    /// store: invariant violations degrade and are logged instead of
    /// panicking. Off by default — a healthy circuit should fault loudly.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
        self.store.set_tolerant(tolerant);
    }

    /// Drains the integrity violations logged in tolerant mode.
    pub fn take_integrity_events(&mut self) -> Vec<IntegrityEvent> {
        std::mem::take(&mut self.integrity_log)
    }

    /// Switches an **empty** circuit's translation table and tag-storage
    /// SRAM into paged mode: both materialize fixed-size pages on first
    /// write and the translation table frees pages again on section
    /// recycling, so host memory tracks the *live*-tag window instead of
    /// the full `B^L` tag space. Observationally identical to eager mode
    /// (the equivalence suite pins identical departure sequences); the
    /// on-chip trie stays eager — it is already small.
    ///
    /// # Panics
    ///
    /// Panics if the circuit holds tags or the store was ever written.
    pub fn set_paged(&mut self) {
        assert!(self.is_empty(), "set_paged requires an empty circuit");
        self.translation.set_paged();
        self.store.set_paged();
    }

    /// Whether the circuit's off-chip state is in paged mode.
    pub fn is_paged(&self) -> bool {
        self.translation.is_paged()
    }

    /// Resident/peak/total addressable state words across the three
    /// components (translation entries + store link words + trie node
    /// words). In paged mode the resident figures track the live-tag
    /// window; eager mode is always fully resident.
    pub fn resident_memory(&self) -> crate::backend::ResidentMemory {
        let (tr_res, tr_peak, tr_total) = self.translation.resident_entries();
        let (st_res, st_peak, st_total) = self.store.resident_words();
        // The on-chip trie never pages; its words count as resident.
        let trie_words = FaultTarget::fault_words(&self.trie) as u64;
        crate::backend::ResidentMemory {
            resident_words: (tr_res + st_res) as u64 + trie_words,
            peak_resident_words: (tr_peak + st_peak) as u64 + trie_words,
            total_words: (tr_total + st_total) as u64 + trie_words,
        }
    }

    /// Drains the structural corruptions the tag store observed.
    pub fn take_store_corruptions(&mut self) -> Vec<StoreCorruption> {
        self.store.take_corruptions()
    }

    /// Drains the parity alarms the tag-storage SRAM raised.
    pub fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        self.store.take_parity_alarms()
    }

    /// The fault-injection surface of one component, for a
    /// [`faultsim::FaultPlan`] to write into.
    ///
    /// # Panics
    ///
    /// Panics on [`FaultComponent::Buffer`]: the packet buffer is
    /// scheduler state, not sorter state — the scheduler routes buffer
    /// faults to its own payload memory before they reach a backend.
    pub fn fault_target_mut(&mut self, component: FaultComponent) -> &mut dyn FaultTarget {
        match component {
            FaultComponent::Trie => &mut self.trie,
            FaultComponent::Translation => &mut self.translation,
            FaultComponent::TagStore => &mut self.store,
            FaultComponent::Buffer => {
                panic!("the sorter holds no packet buffer; route buffer faults to the scheduler")
            }
        }
    }

    /// Flattened fault-word index of trie node `(level, index)` — maps
    /// integrity events and scrub mismatches back onto the trie's
    /// [`FaultTarget`] address space.
    pub fn trie_fault_word_index(&self, level: u32, index: u32) -> usize {
        self.trie.fault_word_index(level, index)
    }

    /// Audits one trie section against translation-table ground truth,
    /// optionally repairing it (the scrubber's unit of work).
    ///
    /// The invariant checked: a leaf marker bit is set iff the
    /// corresponding translation entry is present, and an upper-level bit
    /// is set iff its child subtree holds any marker. This holds under
    /// *both* cleanup policies — commits set marker and entry together,
    /// eager pops clear both, lazy pops clear neither, and section
    /// recycling clears both in bulk.
    ///
    /// Repair reuses the Fig.-6 bulk-delete machinery: the section is
    /// isolated with one root write ([`MultiBitTrie::clear_section`]) and
    /// rebuilt by re-inserting a marker for every translation entry the
    /// section holds. All reads are out-of-band audit traffic (no access
    /// accounting); the re-inserted markers cost real trie writes.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn scrub_section(&mut self, section: u32, repair: bool) -> SectionScrub {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        let b = self.geometry.literal_bits();
        let branching = self.geometry.branching();
        let levels = self.geometry.levels();
        let mut mismatches = Vec::new();
        let mut words_checked = 1u64; // the root word
                                      // Expected occupancy words for the section subtree, leaf upward.
                                      // `expected[l - 1]` covers level `l`'s span under the section.
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); levels.saturating_sub(1) as usize];
        for level in (1..levels).rev() {
            let span = 1usize << (b * (level - 1));
            let start = (section as usize) << (b * (level - 1));
            let mut words = vec![0u64; span];
            for (k, word) in words.iter_mut().enumerate() {
                for j in 0..branching {
                    let set = if level == levels - 1 {
                        let tag = Tag((((start + k) as u32) << b) | j);
                        self.translation.peek(tag).is_some()
                    } else {
                        expected[level as usize][(k << b) | j as usize] != 0
                    };
                    if set {
                        *word |= 1u64 << j;
                    }
                }
            }
            expected[level as usize - 1] = words;
        }
        for level in 1..levels {
            let start = (section as usize) << (b * (level - 1));
            for (k, &want) in expected[level as usize - 1].iter().enumerate() {
                words_checked += 1;
                let index = (start + k) as u32;
                let found = self.trie.node_word(level, index);
                if found != want {
                    mismatches.push(TrieMismatch {
                        level,
                        index,
                        flat: self.trie.fault_word_index(level, index),
                        expected: want,
                        found,
                    });
                }
            }
        }
        // The root word is shared across sections: audit this section's
        // bit only.
        let root_found = self.trie.node_word(0, 0);
        let root_want_bit = if levels == 1 {
            // Single-level tree: the section *is* the tag value.
            u64::from(self.translation.peek(Tag(section)).is_some())
        } else {
            u64::from(expected[0].iter().any(|&w| w != 0))
        };
        if (root_found >> section) & 1 != root_want_bit {
            let want = (root_found & !(1u64 << section)) | (root_want_bit << section);
            mismatches.insert(
                0,
                TrieMismatch {
                    level: 0,
                    index: 0,
                    flat: 0,
                    expected: want,
                    found: root_found,
                },
            );
        }
        let mut repaired_markers = 0u64;
        let run_repair = repair && !mismatches.is_empty();
        if run_repair {
            self.trie.clear_section(section);
            let span = self.geometry.tag_space() / u64::from(self.geometry.branching());
            let base = u64::from(section) * span;
            for value in base..base + span {
                if self.translation.peek(Tag(value as u32)).is_some() {
                    self.trie.insert_marker(Tag(value as u32));
                    repaired_markers += 1;
                }
            }
        }
        SectionScrub {
            section,
            words_checked,
            mismatches,
            repaired_markers,
            repaired: run_repair,
        }
    }

    /// Audits one translation-table section against its running check
    /// code, optionally repairing it — the second half of the scrubber's
    /// unit of work ([`SortRetrieveCircuit::scrub_section`] audits the
    /// trie against the translation table; this audits the table
    /// itself).
    ///
    /// Detection is cheap: recompute the section's check code and
    /// compare (one word of audit cost on a match). On a mismatch under
    /// [`CleanupPolicy::Eager`], ground truth is rebuilt from the tag
    /// store's sorted list — the entry for a value must point at its
    /// most recently inserted link, the last of its duplicate run in
    /// list order — and every disagreeing entry is reported; repair
    /// rewrites them (real translation writes) and re-latches the code.
    /// Under [`CleanupPolicy::Lazy`] departed values legitimately keep
    /// stale entries, so the walk is not ground truth: the scrub
    /// detects, and repair only re-latches the code onto the surviving
    /// content so the same upset is not re-reported every pass.
    ///
    /// All reads are out-of-band audit traffic (no access accounting);
    /// repairs cost real translation writes.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn scrub_translation_section(&mut self, section: u32, repair: bool) -> TranslationScrub {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        let mut words_checked = 1u64; // the check-code compare
        if self.translation.verify_section_crc(section) {
            return TranslationScrub {
                section,
                words_checked,
                crc_mismatch: false,
                damaged_words: Vec::new(),
                repaired_entries: 0,
                repaired: false,
            };
        }
        let span = self.geometry.tag_space() / u64::from(self.geometry.branching());
        let base = u64::from(section) * span;
        let mut damaged_words = Vec::new();
        if self.policy == CleanupPolicy::Eager {
            // Ground truth from the storage list: last duplicate wins.
            let mut expected: Vec<Option<LinkAddr>> = vec![None; span as usize];
            for (addr, tag, _payload) in self.store.iter_links() {
                let value = u64::from(tag.value());
                if (base..base + span).contains(&value) {
                    expected[(value - base) as usize] = Some(addr);
                }
            }
            for (k, &want) in expected.iter().enumerate() {
                words_checked += 1;
                let tag = Tag((base + k as u64) as u32);
                if self.translation.peek(tag) != want {
                    damaged_words.push(tag.value() as usize);
                }
            }
            if repair {
                for &word in &damaged_words {
                    let tag = Tag(word as u32);
                    match expected[word - base as usize] {
                        Some(addr) => self.translation.set(tag, addr),
                        None => self.translation.clear(tag),
                    }
                }
            }
        }
        let repaired_entries = if repair {
            damaged_words.len() as u64
        } else {
            0
        };
        if repair {
            self.translation.resync_section_crc(section);
        }
        TranslationScrub {
            section,
            words_checked,
            crc_mismatch: true,
            damaged_words,
            repaired_entries,
            repaired: repair,
        }
    }

    /// Locates the list predecessor via tree + translation table.
    fn locate_predecessor(&mut self, tag: Tag) -> Result<Option<LinkAddr>, SortError> {
        if !self.geometry.contains(tag) {
            return Err(SortError::TagOutOfRange {
                tag,
                tag_bits: self.geometry.tag_bits(),
            });
        }
        // Initialization mode (paper §III-A): an empty system skips the
        // search entirely; only the tree write is needed. Under lazy
        // cleanup, stale markers survive the drain, so the restart must
        // resume at or above the highest of them (the paper's monotone
        // virtual time) — otherwise later searches could land on a stale
        // marker *above* the new live minimum and dereference a freed
        // link.
        if self.store.is_empty() {
            if self.policy == CleanupPolicy::Lazy {
                if let Some(stale_max) = self.trie.max() {
                    if tag < stale_max {
                        return Err(SortError::BelowMinimum {
                            tag,
                            minimum: stale_max,
                        });
                    }
                }
            }
            return Ok(None);
        }
        if self.policy == CleanupPolicy::Lazy {
            // In tolerant mode a corruption-truncated list can leave the
            // length counter above an empty head; degrade to head insert.
            let Some((minimum, _)) = self.store.peek_min() else {
                return Ok(None);
            };
            if tag < minimum {
                return Err(SortError::BelowMinimum { tag, minimum });
            }
        }
        if self.tolerant {
            return Ok(self.locate_predecessor_tolerant(tag));
        }
        match self.trie.closest_at_or_below(tag) {
            Some(value) => {
                let addr = self
                    .translation
                    .get(value)
                    .expect("tree marker without translation entry");
                Ok(Some(addr))
            }
            None => Ok(None),
        }
    }

    /// The tolerant-mode search: every invariant violation the plain path
    /// would panic on is logged and degraded to a head insert — locally
    /// mis-sorted service, but continued service.
    fn locate_predecessor_tolerant(&mut self, tag: Tag) -> Option<LinkAddr> {
        let value = match self.trie.closest_at_or_below_tolerant(tag) {
            Ok(v) => v?,
            Err(dead) => {
                self.integrity_log.push(IntegrityEvent::TrieDeadEnd {
                    level: dead.level,
                    index: dead.index,
                });
                return None;
            }
        };
        match self.translation.get(value) {
            Some(addr) if (addr.0 as usize) < self.store.capacity() => Some(addr),
            Some(addr) => {
                self.integrity_log
                    .push(IntegrityEvent::BadLinkAddr { tag: value, addr });
                None
            }
            None => {
                self.integrity_log
                    .push(IntegrityEvent::MissingTranslation { tag: value });
                None
            }
        }
    }

    fn commit_insert(&mut self, tag: Tag, addr: LinkAddr) {
        self.translation.set(tag, addr);
        self.trie.insert_marker(tag);
    }

    fn reconcile_pop(&mut self, tag: Tag, addr: LinkAddr) {
        if self.policy == CleanupPolicy::Eager && self.translation.get(tag) == Some(addr) {
            // The departing link was the most recent instance of its
            // value: the value has fully left the system.
            self.translation.clear(tag);
            self.trie.remove_marker(tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(c: &mut SortRetrieveCircuit) -> Vec<(u32, u32)> {
        std::iter::from_fn(|| c.pop_min())
            .map(|(t, p)| (t.value(), p.index()))
            .collect()
    }

    #[test]
    fn sorts_arbitrary_insert_order() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        for (i, t) in [500u32, 3, 1000, 42, 999, 4, 4095, 0].iter().enumerate() {
            c.insert(Tag(*t), PacketRef(i as u32)).unwrap();
        }
        let tags: Vec<u32> = drain(&mut c).iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, vec![0, 3, 4, 42, 500, 999, 1000, 4095]);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicates_served_fcfs_via_translation_table() {
        // Paper Fig. 11's scenario: 5, 5, then 6 — the second 5 lands
        // after the first, and 6 lands after the *newest* 5.
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);
        c.insert(Tag(5), PacketRef(1)).unwrap();
        c.insert(Tag(5), PacketRef(2)).unwrap();
        c.insert(Tag(6), PacketRef(3)).unwrap();
        assert_eq!(
            drain(&mut c),
            vec![(5, 1), (5, 2), (6, 3)],
            "first come first served among equal tags"
        );
    }

    #[test]
    fn eager_cleanup_keeps_tree_and_store_coherent() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);
        c.insert(Tag(7), PacketRef(0)).unwrap();
        c.insert(Tag(9), PacketRef(1)).unwrap();
        c.pop_min().unwrap(); // 7 leaves; its marker must go too
                              // A new 8 must sort after nothing (7's marker gone) but before 9.
        c.insert(Tag(8), PacketRef(2)).unwrap();
        assert_eq!(drain(&mut c), vec![(8, 2), (9, 1)]);
    }

    #[test]
    fn eager_cleanup_allows_below_minimum_inserts() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);
        c.insert(Tag(100), PacketRef(0)).unwrap();
        c.insert(Tag(5), PacketRef(1)).unwrap(); // fine under Eager
        assert_eq!(drain(&mut c), vec![(5, 1), (100, 0)]);
    }

    #[test]
    fn lazy_policy_rejects_contract_violations() {
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 16, CleanupPolicy::Lazy);
        c.insert(Tag(100), PacketRef(0)).unwrap();
        assert_eq!(
            c.insert(Tag(5), PacketRef(1)),
            Err(SortError::BelowMinimum {
                tag: Tag(5),
                minimum: Tag(100)
            })
        );
        // At-the-minimum duplicates are allowed by the WFQ contract.
        c.insert(Tag(100), PacketRef(2)).unwrap();
        assert_eq!(drain(&mut c), vec![(100, 0), (100, 2)]);
    }

    #[test]
    fn lazy_policy_correct_for_contract_conforming_stream() {
        // Under the paper's contract — every new tag at or above the
        // smallest tag in the system — departures ascend, so every stale
        // marker sits at or below the live minimum and can never win a
        // closest-match search. A long conforming mix must stay sorted.
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 256, CleanupPolicy::Lazy);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut popped = Vec::new();
        for i in 0..400u32 {
            let min = c.peek_min().map_or(0, |(t, _)| t.value());
            let tag = min + (next() % 64) as u32;
            if tag < 4096 {
                c.insert(Tag(tag), PacketRef(i)).unwrap();
            }
            if next() % 2 == 0 {
                if let Some((t, _)) = c.pop_min() {
                    popped.push(t.value());
                }
            }
        }
        popped.extend(drain(&mut c).iter().map(|&(t, _)| t));
        assert!(
            popped.windows(2).all(|w| w[0] <= w[1]),
            "lazy-mode service order regressed"
        );
    }

    #[test]
    fn lazy_stale_markers_are_shadowed_by_live_minimum() {
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, CleanupPolicy::Lazy);
        for t in [10u32, 11, 12, 40] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        for _ in 0..3 {
            c.pop_min().unwrap(); // 10, 11, 12 depart; markers remain
        }
        // 45's closest live value is 40; the stale 10/11/12 markers are
        // below the live minimum and cannot be returned.
        c.insert(Tag(45), PacketRef(45)).unwrap();
        let tags: Vec<u32> = c.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![40, 45]);
        // 35 would land *between* a stale marker and the live minimum —
        // exactly the case the paper's contract excludes and eager
        // cleanup exists for. Lazy mode must refuse rather than corrupt.
        assert!(matches!(
            c.insert(Tag(35), PacketRef(35)),
            Err(SortError::BelowMinimum { .. })
        ));
    }

    #[test]
    fn insert_and_pop_single_slot() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);
        c.insert(Tag(10), PacketRef(0)).unwrap();
        c.insert(Tag(20), PacketRef(1)).unwrap();
        let before = c.cycles();
        let served = c.insert_and_pop(Tag(15), PacketRef(2)).unwrap();
        assert_eq!(c.cycles().since(before), 4, "combined op is one slot");
        assert_eq!(served, Some((Tag(10), PacketRef(0))));
        assert_eq!(drain(&mut c), vec![(15, 2), (20, 1)]);
    }

    #[test]
    fn insert_and_pop_duplicate_of_departing_minimum() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 16);
        c.insert(Tag(5), PacketRef(0)).unwrap();
        c.insert(Tag(9), PacketRef(1)).unwrap();
        // A new 5 arrives as the old 5 departs.
        let served = c.insert_and_pop(Tag(5), PacketRef(2)).unwrap();
        assert_eq!(served, Some((Tag(5), PacketRef(0))));
        assert_eq!(drain(&mut c), vec![(5, 2), (9, 1)]);
    }

    #[test]
    fn fixed_four_cycles_per_operation_in_steady_state() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 4096);
        for t in 0..1000u32 {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        for _ in 0..500 {
            c.pop_min().unwrap();
        }
        let stats = c.stats();
        assert_eq!(stats.ops, 1500);
        assert_eq!(stats.cycles_per_op(), 4.0);
    }

    #[test]
    fn qdr_circuit_doubles_throughput() {
        // §III-C's "QDRII ... under development" + §V's "suitable for
        // throughput speeds beyond 40 Gb/s": two-cycle slots double the
        // packet rate at the same clock.
        let mut c = SortRetrieveCircuit::with_policy_and_memory(
            Geometry::paper(),
            1024,
            CleanupPolicy::Eager,
            crate::tagstore::MemoryKind::QdrLike,
        );
        for t in 0..512u32 {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        for _ in 0..256 {
            c.pop_min().unwrap();
        }
        let stats = c.stats();
        assert_eq!(stats.cycles_per_op(), 2.0);
        let mpps = stats.packets_per_second(PAPER_CLOCK_HZ) / 1e6;
        assert!((mpps - 71.6).abs() < 0.1, "got {mpps} Mpps");
        let gbps = stats.line_rate_bps(PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES) / 1e9;
        assert!(gbps > 80.0, "got {gbps} Gb/s");
    }

    #[test]
    fn table2_throughput_derivation() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 1024);
        for t in 0..512u32 {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        let stats = c.stats();
        let mpps = stats.packets_per_second(PAPER_CLOCK_HZ) / 1e6;
        assert!((mpps - 35.8).abs() < 0.1, "got {mpps} Mpps");
        let gbps = stats.line_rate_bps(PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES) / 1e9;
        assert!((40.0..41.0).contains(&gbps), "got {gbps} Gb/s");
    }

    #[test]
    fn recycle_section_clears_stale_markers_in_lazy_mode() {
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, CleanupPolicy::Lazy);
        // Fill and drain section 0 (tags 0..256).
        for t in [1u32, 2, 3] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        while c.pop_min().is_some() {}
        // Stale markers linger...
        let removed = c.recycle_section(0);
        assert_eq!(removed, 3, "lazy mode leaves markers for recycling");
        // ...and the range is clean for reuse.
        c.insert(Tag(1), PacketRef(9)).unwrap();
        assert_eq!(drain(&mut c), vec![(1, 9)]);
    }

    #[test]
    fn recycle_section_is_noop_under_eager() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        for t in [1u32, 2, 3] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        while c.pop_min().is_some() {}
        assert_eq!(c.recycle_section(0), 0);
    }

    #[test]
    fn errors_are_reported() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 2);
        assert_eq!(
            c.insert(Tag(5000), PacketRef(0)),
            Err(SortError::TagOutOfRange {
                tag: Tag(5000),
                tag_bits: 12
            })
        );
        c.insert(Tag(1), PacketRef(0)).unwrap();
        c.insert(Tag(2), PacketRef(1)).unwrap();
        assert_eq!(
            c.insert(Tag(3), PacketRef(2)),
            Err(SortError::Full { capacity: 2 })
        );
        assert_eq!(
            SortError::Full { capacity: 2 }.to_string(),
            "tag storage memory full (2 links)"
        );
    }

    #[test]
    fn scrub_of_healthy_circuit_finds_nothing() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        for t in [3u32, 300, 301, 4000] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        c.pop_min().unwrap();
        for section in 0..c.geometry().sections() {
            let scrub = c.scrub_section(section, true);
            assert!(scrub.mismatches.is_empty(), "section {section}");
            assert!(!scrub.repaired);
            assert_eq!(scrub.repaired_markers, 0);
            // Paper geometry: 1 root + 1 level-1 + 16 leaf words.
            assert_eq!(scrub.words_checked, 18);
        }
    }

    #[test]
    fn scrub_detects_lazy_mode_state_as_consistent() {
        // Lazy pops clear neither marker nor entry: the marker ⇔ entry
        // invariant must survive a fill/drain cycle untouched.
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, CleanupPolicy::Lazy);
        for t in [5u32, 6, 7] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        while c.pop_min().is_some() {}
        assert!(c.scrub_section(0, false).mismatches.is_empty());
        c.recycle_section(0);
        assert!(c.scrub_section(0, false).mismatches.is_empty());
    }

    #[test]
    fn scrub_and_repair_restores_a_flipped_leaf_word() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        for t in [0x120u32, 0x121, 0x300] {
            c.insert(Tag(t), PacketRef(t)).unwrap();
        }
        // Flip 0x121's leaf marker off and a bogus 0x125 on.
        let flat = c.trie_fault_word_index(2, 0x12);
        c.fault_target_mut(FaultComponent::Trie)
            .inject_fault(flat, (1 << 1) | (1 << 5));
        let scrub = c.scrub_section(1, true);
        assert_eq!(scrub.mismatches.len(), 1);
        assert_eq!(scrub.mismatches[0].flat, flat);
        assert_eq!(scrub.mismatches[0].expected, (1 << 0) | (1 << 1));
        assert_eq!(scrub.mismatches[0].found, (1 << 0) | (1 << 5));
        assert!(scrub.repaired);
        assert_eq!(scrub.repaired_markers, 2);
        // Section 3 was untouched; the repaired circuit serves exactly.
        assert!(c.scrub_section(1, false).mismatches.is_empty());
        assert_eq!(
            drain(&mut c),
            vec![(0x120, 0x120), (0x121, 0x121), (0x300, 0x300)]
        );
    }

    #[test]
    fn scrub_detects_conjured_translation_entry() {
        // A presence-bit upset in the translation table makes the table
        // itself the corrupt side; the scrubber still reports the
        // disagreement (it cannot know which side is right — the ledger
        // does).
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.insert(Tag(0x200), PacketRef(1)).unwrap();
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0x210, 1 << 32);
        let scrub = c.scrub_section(2, false);
        assert!(!scrub.mismatches.is_empty());
    }

    #[test]
    fn tolerant_mode_degrades_instead_of_panicking() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.set_tolerant(true);
        c.insert(Tag(0x123), PacketRef(1)).unwrap();
        // Clear the leaf word: upper levels now point at nothing.
        let flat = c.trie_fault_word_index(2, 0x12);
        c.fault_target_mut(FaultComponent::Trie)
            .inject_fault(flat, 1 << 3);
        // The plain path would panic on the dead end; tolerant mode logs
        // it and falls back to a head insert.
        c.insert(Tag(0x200), PacketRef(2)).unwrap();
        let events = c.take_integrity_events();
        assert_eq!(
            events,
            vec![IntegrityEvent::TrieDeadEnd {
                level: 2,
                index: 0x12
            }]
        );
        assert!(c.take_integrity_events().is_empty());
        assert_eq!(c.pop_min().map(|(t, _)| t), Some(Tag(0x200)));
    }

    #[test]
    fn tolerant_mode_reports_missing_translation() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.set_tolerant(true);
        c.insert(Tag(0x40), PacketRef(1)).unwrap();
        // Drop the entry's presence bit: the marker now dangles.
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0x40, 1 << 32);
        c.insert(Tag(0x50), PacketRef(2)).unwrap();
        assert_eq!(
            c.take_integrity_events(),
            vec![IntegrityEvent::MissingTranslation { tag: Tag(0x40) }]
        );
    }

    #[test]
    fn empty_circuit_behaviour() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 4);
        assert_eq!(c.pop_min(), None);
        assert_eq!(c.peek_min(), None);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 4);
        // insert_and_pop on an empty circuit cuts through.
        assert_eq!(
            c.insert_and_pop(Tag(9), PacketRef(0)).unwrap(),
            Some((Tag(9), PacketRef(0)))
        );
        assert_eq!(c.peek_min(), None);
    }

    #[test]
    fn translation_scrub_is_clean_without_damage() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.insert(Tag(0xa05), PacketRef(1)).unwrap();
        c.insert(Tag(0xa05), PacketRef(2)).unwrap();
        c.pop_min();
        for section in 0..16u32 {
            let scrub = c.scrub_translation_section(section, true);
            assert!(!scrub.crc_mismatch, "section {section}");
            assert_eq!(scrub.words_checked, 1, "a clean check costs one compare");
            assert!(!scrub.repaired);
        }
    }

    #[test]
    fn translation_scrub_repairs_a_damaged_pointer() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.insert(Tag(0xa05), PacketRef(1)).unwrap();
        c.insert(Tag(0xa07), PacketRef(2)).unwrap();
        // Flip an address bit in 0xa05's entry behind the checker.
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0xa05, 0b1);
        let scrub = c.scrub_translation_section(0xa, true);
        assert!(scrub.crc_mismatch);
        assert_eq!(scrub.damaged_words, vec![0xa05]);
        assert_eq!(scrub.repaired_entries, 1);
        assert!(scrub.repaired);
        // The repair restored the real pointer: a duplicate insert
        // chains through it and FIFO service is intact.
        c.insert(Tag(0xa05), PacketRef(3)).unwrap();
        assert_eq!(c.pop_min(), Some((Tag(0xa05), PacketRef(1))));
        assert_eq!(c.pop_min(), Some((Tag(0xa05), PacketRef(3))));
        assert_eq!(c.pop_min(), Some((Tag(0xa07), PacketRef(2))));
        // And the check code was re-latched.
        assert!(!c.scrub_translation_section(0xa, false).crc_mismatch);
    }

    #[test]
    fn translation_scrub_repairs_a_conjured_entry() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.insert(Tag(0x305), PacketRef(1)).unwrap();
        // Conjure a presence bit for a value that holds no link.
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0x310, 1 << 32);
        let scrub = c.scrub_translation_section(3, true);
        assert_eq!(scrub.damaged_words, vec![0x310]);
        assert!(!c.scrub_translation_section(3, false).crc_mismatch);
        assert_eq!(c.pop_min(), Some((Tag(0x305), PacketRef(1))));
    }

    #[test]
    fn translation_scrub_detects_latched_damage_after_overwrite() {
        let mut c = SortRetrieveCircuit::new(Geometry::paper(), 64);
        c.insert(Tag(0x105), PacketRef(1)).unwrap();
        // Conjure a presence bit at a value with no marker: the next
        // insert of that value searches via 0x105's clean entry and
        // legitimately overwrites the damaged word with correct state…
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0x110, 1 << 32);
        c.insert(Tag(0x110), PacketRef(2)).unwrap();
        let scrub = c.scrub_translation_section(1, true);
        // …so the code still flags the upset, but content ground truth
        // finds nothing left to rewrite.
        assert!(scrub.crc_mismatch);
        assert!(scrub.damaged_words.is_empty());
        assert_eq!(scrub.repaired_entries, 0);
        assert!(!c.scrub_translation_section(1, false).crc_mismatch);
    }

    #[test]
    fn translation_scrub_is_detect_only_under_lazy_cleanup() {
        let mut c = SortRetrieveCircuit::with_policy(Geometry::paper(), 64, CleanupPolicy::Lazy);
        c.insert(Tag(0x205), PacketRef(1)).unwrap();
        c.fault_target_mut(FaultComponent::Translation)
            .inject_fault(0x205, 0b1);
        let scrub = c.scrub_translation_section(2, true);
        assert!(scrub.crc_mismatch);
        // Stale entries are legitimate under lazy cleanup, so the walk
        // is not ground truth: no rewrites, just a re-latched code.
        assert!(scrub.damaged_words.is_empty());
        assert_eq!(scrub.repaired_entries, 0);
        assert!(scrub.repaired);
        assert!(!c.scrub_translation_section(2, false).crc_mismatch);
    }
}
