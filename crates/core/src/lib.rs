//! The tag sort/retrieve circuit — the paper's primary contribution.
//!
//! A fair-queueing packet scheduler must keep every queued packet's
//! *finishing tag* available in sorted order, so the egress side can pull
//! the smallest tag in **fixed time** (paper §II-C: the "sort model").
//! This crate implements the circuit the paper builds for that job, with
//! the same three-part decomposition (paper Fig. 3):
//!
//! 1. [`MultiBitTrie`] — a multi-bit search tree holding one *tag marker*
//!    per tag value present. Searching returns the closest match at or
//!    below a requested value in exactly one pass, using a parallel
//!    backup path when the primary search dead-ends (Figs. 4–5).
//! 2. [`TranslationTable`] — maps each representable tag value to the
//!    physical address of the most recently inserted link carrying it,
//!    bridging the tree and the storage memory and making the two
//!    independently scalable (Fig. 11).
//! 3. [`TagStore`] — the tag storage memory: a linked list of
//!    `(tag, packet pointer, next)` links in external SRAM, kept in
//!    sorted order, with an empty list threaded through the same memory
//!    (Figs. 9–10). Every operation fits a fixed four-clock-cycle
//!    read/read/write/write schedule, enforced by the port arbitration
//!    of [`hwsim::Sram`].
//!
//! [`SortRetrieveCircuit`] wires the three together behind the two-verb
//! interface the scheduler needs: [`SortRetrieveCircuit::insert`] and
//! [`SortRetrieveCircuit::pop_min`], plus the section-recycling hook
//! ([`SortRetrieveCircuit::recycle_section`]) that lets the WFQ virtual
//! clock wrap (Fig. 6).
//!
//! # Example
//!
//! ```
//! use tagsort::{Geometry, PacketRef, SortRetrieveCircuit, Tag};
//!
//! # fn main() -> Result<(), tagsort::SortError> {
//! // The fabricated geometry: 3 levels of 16-bit nodes => 12-bit tags.
//! let mut circuit = SortRetrieveCircuit::new(Geometry::paper(), 1 << 16);
//! circuit.insert(Tag(0b110111), PacketRef(7))?;
//! circuit.insert(Tag(0b001001), PacketRef(8))?;
//! circuit.insert(Tag(0b110101), PacketRef(9))?;
//! let (tag, packet) = circuit.pop_min().expect("not empty");
//! assert_eq!((tag, packet), (Tag(0b001001), PacketRef(8)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod banking;
mod circuit;
mod geometry;
mod heap;
mod paged;
mod pipeline;
mod tag;
mod tagstore;
mod translation;
mod trie;

pub use backend::{BackendSpec, ResidentMemory, SortBackend};
pub use banking::BankModel;
pub use circuit::{
    CircuitStats, CleanupPolicy, IntegrityEvent, SectionScrub, SortError, SortRetrieveCircuit,
    TranslationScrub, TrieMismatch, PAPER_CLOCK_HZ, PAPER_MEAN_PACKET_BYTES,
};
pub use geometry::Geometry;
pub use heap::HeapSorter;
pub use paged::{PagedTranslationTable, PAGE_ENTRIES};
pub use pipeline::{Issue, PipelineStats, PipelinedSortBackend, PipelinedSorter};
pub use tag::{PacketRef, Tag, PACKET_SLOT_BITS};
pub use tagstore::{LinkAddr, MemoryKind, StoreCorruption, StoreFullError, StoreLayout, TagStore};
pub use translation::TranslationTable;
pub use trie::{IterMarked, MultiBitTrie, SearchTrace, TrieDeadEnd};
