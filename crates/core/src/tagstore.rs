//! The tag storage memory (paper §III-C, Figs. 9–10).
//!
//! Tags live in external SRAM as a linked list sorted by value, so the
//! smallest tag — the next packet to serve — is always at the head. A
//! second, *empty* list threaded through the same memory supplies unused
//! links; before it forms, an initialization counter hands out fresh
//! addresses (Fig. 10).
//!
//! Every operation fits the paper's fixed four-clock-cycle schedule of
//! at most two reads and two writes. The schedule is enforced, not
//! merely counted: accesses are issued to a single-port
//! [`hwsim::Sram`] on explicit cycles, and any slot carrying two
//! accesses would fault the simulation.
//!
//! | cycle | [`TagStore::insert`]         | [`TagStore::pop_min`]  | [`TagStore::insert_and_pop`] |
//! |-------|------------------------------|------------------------|------------------------------|
//! | 0     | read free link (alloc)       | read next link (refill head register) | read next link (refill) |
//! | 1     | read predecessor link        | —                      | read predecessor link        |
//! | 2     | write predecessor link       | write freed link onto empty list | write predecessor link |
//! | 3     | write new link               | —                      | write new link (reusing the freed slot) |
//!
//! The combined column is the paper's "simultaneous insert and pop"
//! case: the freed head link is reused for the incoming tag, so the pair
//! of operations still completes in one four-cycle slot.

use std::error::Error;
use std::fmt;

use faultsim::FaultTarget;
use hwsim::{Clock, Cycle, ParityAlarm, PortKind, Sram, SramConfig, SramStats};

use crate::geometry::Geometry;
use crate::tag::{PacketRef, Tag};

/// A structurally invalid link observed while reading the store in
/// tolerant mode: the word at `addr` carried a next-pointer outside the
/// configured capacity. The pointer is treated as NIL (the list is
/// truncated there) instead of faulting the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCorruption {
    /// Address of the link word holding the bad pointer.
    pub addr: u32,
    /// Cycle of the read that observed it.
    pub cycle: Cycle,
}

/// Physical address of a link in the tag storage memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkAddr(pub u32);

impl fmt::Display for LinkAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link @{}", self.0)
    }
}

/// Bit layout of one SRAM link word: `| next | payload | tag |`.
///
/// The paper's links store a tag and a pointer to the next link, plus the
/// packet-buffer pointer the scheduler serves from. All three fields are
/// packed into one SRAM word so an access is one memory operation.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, StoreLayout};
///
/// // 12-bit tags, room for ~1M links, 24-bit packet references:
/// let l = StoreLayout::new(12, 20, 24);
/// assert_eq!(l.word_bits(), 56);
/// assert_eq!(l.max_capacity(), (1 << 20) - 1); // one code reserved for NIL
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLayout {
    tag_bits: u32,
    ptr_bits: u32,
    payload_bits: u32,
}

impl StoreLayout {
    /// Creates a layout; fields must fit one 64-bit SRAM word.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero, tags exceed 30 bits, pointers exceed
    /// 32 bits, or the total exceeds 64 bits.
    pub fn new(tag_bits: u32, ptr_bits: u32, payload_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&tag_bits),
            "tag field must be 1..=30 bits"
        );
        assert!(
            (1..=32).contains(&ptr_bits),
            "pointer field must be 1..=32 bits"
        );
        assert!(
            (1..=32).contains(&payload_bits),
            "payload field must be 1..=32 bits"
        );
        assert!(
            tag_bits + ptr_bits + payload_bits <= 64,
            "link fields exceed one 64-bit word: {tag_bits}+{ptr_bits}+{payload_bits}"
        );
        Self {
            tag_bits,
            ptr_bits,
            payload_bits,
        }
    }

    /// A layout fitting `geometry`'s tags and at least `capacity` links,
    /// spending the slack on payload width (up to 32 bits).
    ///
    /// # Panics
    ///
    /// Panics if the fields cannot fit a 64-bit word.
    pub fn for_geometry(geometry: Geometry, capacity: usize) -> Self {
        let tag_bits = geometry.tag_bits();
        let mut ptr_bits = 1;
        while ((1u64 << ptr_bits) - 1) < capacity as u64 {
            ptr_bits += 1;
        }
        let payload_bits = (64 - tag_bits - ptr_bits).min(32);
        Self::new(tag_bits, ptr_bits, payload_bits)
    }

    /// Total bits used per link word.
    pub fn word_bits(self) -> u32 {
        self.tag_bits + self.ptr_bits + self.payload_bits
    }

    /// Width of the tag field.
    pub fn tag_bits(self) -> u32 {
        self.tag_bits
    }

    /// Width of the next-link pointer field.
    pub fn ptr_bits(self) -> u32 {
        self.ptr_bits
    }

    /// Width of the packet-reference field.
    pub fn payload_bits(self) -> u32 {
        self.payload_bits
    }

    /// Largest capacity this layout can address (one pointer code is the
    /// NIL sentinel).
    pub fn max_capacity(self) -> usize {
        ((1u64 << self.ptr_bits) - 1) as usize
    }

    fn nil(self) -> u64 {
        (1u64 << self.ptr_bits) - 1
    }

    fn pack(self, link: Link) -> u64 {
        debug_assert!(u64::from(link.tag.value()) < (1u64 << self.tag_bits));
        debug_assert!(u64::from(link.payload.index()) < (1u64 << self.payload_bits));
        let next = match link.next {
            Some(a) => {
                debug_assert!(u64::from(a.0) < self.nil());
                u64::from(a.0)
            }
            None => self.nil(),
        };
        u64::from(link.tag.value())
            | (u64::from(link.payload.index()) << self.tag_bits)
            | (next << (self.tag_bits + self.payload_bits))
    }

    fn unpack(self, word: u64) -> Link {
        let tag = Tag((word & ((1u64 << self.tag_bits) - 1)) as u32);
        let payload =
            PacketRef(((word >> self.tag_bits) & ((1u64 << self.payload_bits) - 1)) as u32);
        let next_raw =
            (word >> (self.tag_bits + self.payload_bits)) & ((1u64 << self.ptr_bits) - 1);
        let next = if next_raw == self.nil() {
            None
        } else {
            Some(LinkAddr(next_raw as u32))
        };
        Link { tag, payload, next }
    }
}

/// One entry of the linked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Link {
    tag: Tag,
    payload: PacketRef,
    next: Option<LinkAddr>,
}

/// The tag store is full: the initialization counter is exhausted and the
/// empty list holds no links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFullError {
    /// Configured capacity in links.
    pub capacity: usize,
}

impl fmt::Display for StoreFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag storage memory full ({} links)", self.capacity)
    }
}

impl Error for StoreFullError {}

/// External-memory technology for the tag storage (paper §III-C: "the
/// list is implemented off chip, using SRAM. Currently, QDRII and RLD
/// RAM versions are also under development").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryKind {
    /// Single-port SRAM: one access per cycle, the fabricated four-cycle
    /// slot (2 reads then 2 writes).
    #[default]
    SinglePort,
    /// QDR-style memory: independent read and write ports, so the two
    /// reads and two writes overlap into a **two-cycle** slot — doubling
    /// throughput toward the paper's "beyond 40 Gb/s" claim.
    QdrLike,
}

impl MemoryKind {
    /// Cycles per operation slot under this technology.
    pub fn slot_cycles(self) -> u64 {
        match self {
            MemoryKind::SinglePort => 4,
            MemoryKind::QdrLike => 2,
        }
    }
}

/// The sorted linked list of tags in simulated external SRAM.
///
/// See the table in this file's module comment for the cycle
/// schedule. The
/// head link's contents are mirrored in an architectural register, so
/// [`TagStore::peek_min`] — the value feeding the WFQ virtual-time
/// computation of paper eq. (1) — costs no memory access.
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, PacketRef, StoreLayout, Tag, TagStore};
///
/// let mut store = TagStore::with_geometry(Geometry::paper(), 1024);
/// let a15 = store.insert(None, Tag(15), PacketRef(0)).unwrap();
/// let a17 = store.insert(Some(a15), Tag(17), PacketRef(1)).unwrap();
/// // Paper Fig. 9: insert 16 after the link the tree found (15).
/// store.insert(Some(a15), Tag(16), PacketRef(2)).unwrap();
/// assert_eq!(store.peek_min(), Some((Tag(15), PacketRef(0))));
/// let _ = a17;
/// ```
#[derive(Debug, Clone)]
pub struct TagStore {
    layout: StoreLayout,
    capacity: usize,
    kind: MemoryKind,
    sram: Sram,
    clock: Clock,
    /// Cycle offsets for the slot's two reads and two writes.
    schedule: [(usize, u64); 4],
    /// Head-of-sorted-list register: address plus mirrored link contents.
    head: Option<(LinkAddr, Link)>,
    /// Head of the empty list.
    empty_head: Option<LinkAddr>,
    /// Fig. 10 initialization counter: next never-used address.
    init_counter: u32,
    len: usize,
    /// Tolerant mode: out-of-range next-pointers read back from a
    /// corrupted word are sanitized to NIL and logged instead of
    /// faulting, and the sort-order debug assertions (which injected
    /// faults can legitimately violate) are relaxed.
    tolerant: bool,
    corruptions: Vec<StoreCorruption>,
}

impl TagStore {
    /// Creates an empty store of `capacity` links with an explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the layout's addressable
    /// range.
    pub fn new(layout: StoreLayout, capacity: usize) -> Self {
        Self::with_memory(layout, capacity, MemoryKind::SinglePort)
    }

    /// Creates an empty store on an explicit memory technology.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the layout's addressable
    /// range.
    pub fn with_memory(layout: StoreLayout, capacity: usize, kind: MemoryKind) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity <= layout.max_capacity(),
            "capacity {capacity} exceeds layout maximum {}",
            layout.max_capacity()
        );
        let (config, schedule) = match kind {
            // (port index, cycle offset) for [read1, read2, write1, write2].
            MemoryKind::SinglePort => (
                SramConfig::single_port(capacity, layout.word_bits()),
                [(0, 0), (0, 1), (0, 2), (0, 3)],
            ),
            MemoryKind::QdrLike => (
                SramConfig::new(
                    capacity,
                    layout.word_bits(),
                    vec![PortKind::ReadOnly, PortKind::WriteOnly],
                ),
                [(0, 0), (0, 1), (1, 0), (1, 1)],
            ),
        };
        Self {
            layout,
            capacity,
            kind,
            sram: Sram::new(config),
            clock: Clock::new(),
            schedule,
            head: None,
            empty_head: None,
            init_counter: 0,
            len: 0,
            tolerant: false,
            corruptions: Vec::new(),
        }
    }

    /// Creates a store sized for `geometry`'s tags.
    pub fn with_geometry(geometry: Geometry, capacity: usize) -> Self {
        Self::new(StoreLayout::for_geometry(geometry, capacity), capacity)
    }

    /// Creates a store sized for `geometry`'s tags on an explicit memory
    /// technology.
    pub fn with_geometry_and_memory(geometry: Geometry, capacity: usize, kind: MemoryKind) -> Self {
        Self::with_memory(
            StoreLayout::for_geometry(geometry, capacity),
            capacity,
            kind,
        )
    }

    /// The memory technology in use.
    pub fn memory_kind(&self) -> MemoryKind {
        self.kind
    }

    /// Cycles per operation slot (4 single-port, 2 QDR-like).
    pub fn slot_cycles(&self) -> u64 {
        self.kind.slot_cycles()
    }

    /// Configured capacity in links.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored tags.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The store's bit layout.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Total cycles consumed so far — every operation costs exactly four.
    pub fn cycles(&self) -> Cycle {
        self.clock.now()
    }

    /// SRAM access statistics.
    pub fn sram_stats(&self) -> SramStats {
        self.sram.stats()
    }

    /// Enables waveform-style tracing of every SRAM access (see
    /// [`hwsim::Sram::enable_tracing`]).
    pub fn enable_tracing(&mut self) {
        self.sram.enable_tracing();
    }

    /// Drains the recorded SRAM events (empty unless tracing is on).
    pub fn take_trace(&mut self) -> Vec<hwsim::SramEvent> {
        self.sram.take_trace()
    }

    /// Enables or disables tolerant mode (see [`StoreCorruption`]).
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// Switches an **empty, never-written** store's SRAM into paged mode
    /// (see [`hwsim::Sram::set_paged`]): link words materialize in pages
    /// as the initialization counter hands out fresh addresses, so host
    /// memory tracks the links actually used. Observationally identical
    /// to the eager array — the store never reads a word the counter has
    /// not yet handed out, so lazily-zero reads are unreachable on the
    /// datapath.
    ///
    /// # Panics
    ///
    /// Panics if any link word was already written.
    pub fn set_paged(&mut self) {
        self.sram.set_paged();
    }

    /// Whether the backing SRAM is in paged mode.
    pub fn is_paged(&self) -> bool {
        self.sram.is_paged()
    }

    /// `(resident, peak_resident, total)` link-word counts of the
    /// backing SRAM (always fully resident in eager mode).
    pub fn resident_words(&self) -> (usize, usize, usize) {
        self.sram.resident_words()
    }

    /// Drains the structural corruptions observed in tolerant mode.
    pub fn take_corruptions(&mut self) -> Vec<StoreCorruption> {
        std::mem::take(&mut self.corruptions)
    }

    /// Drains the parity alarms the underlying SRAM raised on reads.
    pub fn take_parity_alarms(&mut self) -> Vec<ParityAlarm> {
        self.sram.take_parity_alarms()
    }

    /// The smallest tag and its packet reference, from the head register
    /// (no memory access — this feeds the scheduler's eq. (1) every
    /// cycle).
    pub fn peek_min(&self) -> Option<(Tag, PacketRef)> {
        self.head.map(|(_, link)| (link.tag, link.payload))
    }

    /// Address of the head link, if any.
    pub fn head_addr(&self) -> Option<LinkAddr> {
        self.head.map(|(a, _)| a)
    }

    /// Inserts `tag` after the link at `prev` (`None` inserts at the
    /// head). `prev` comes from the search tree via the translation
    /// table and must hold a tag ≤ `tag` whose successor's tag is ≥
    /// `tag`; this is guaranteed by the closest-match search and checked
    /// in debug builds.
    ///
    /// Takes exactly one four-cycle slot.
    ///
    /// # Errors
    ///
    /// Returns [`StoreFullError`] if no link is available.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `prev` violates the sort order, and in
    /// all builds if the internal cycle schedule faults the SRAM model.
    pub fn insert(
        &mut self,
        prev: Option<LinkAddr>,
        tag: Tag,
        payload: PacketRef,
    ) -> Result<LinkAddr, StoreFullError> {
        let base = self.clock.now();
        // Read slot 0: allocate (reads the empty list head if the counter
        // is exhausted).
        let addr = self.allocate(base)?;
        let new_addr = addr;
        match prev {
            None => {
                debug_assert!(
                    self.tolerant || self.head.is_none_or(|(_, h)| tag <= h.tag),
                    "head insert with {tag} above current head"
                );
                let link = Link {
                    tag,
                    payload,
                    next: self.head.map(|(a, _)| a),
                };
                // Write slot 3: the new link.
                self.write_slot(base, 3, new_addr, link);
                self.head = Some((new_addr, link));
            }
            Some(prev_addr) => {
                // Read slot 1: the predecessor.
                let mut prev_link = self.read_slot(base, 1, prev_addr);
                debug_assert!(
                    self.tolerant || prev_link.tag <= tag,
                    "insert of {tag} after larger {}",
                    prev_link.tag
                );
                let new_link = Link {
                    tag,
                    payload,
                    next: prev_link.next,
                };
                prev_link.next = Some(new_addr);
                // Write slots 2 and 3: predecessor back, then new link.
                self.write_slot(base, 2, prev_addr, prev_link);
                self.write_slot(base, 3, new_addr, new_link);
                if self.head.map(|(a, _)| a) == Some(prev_addr) {
                    // Keep the head register's mirror coherent.
                    self.head = Some((prev_addr, prev_link));
                }
            }
        }
        self.len += 1;
        self.clock.advance(self.slot_cycles());
        Ok(new_addr)
    }

    /// Removes and returns the smallest tag, its packet reference, and
    /// the address it occupied (so the caller can reconcile the
    /// translation table). The freed link joins the empty list.
    ///
    /// Takes exactly one four-cycle slot.
    ///
    /// # Panics
    ///
    /// Panics if the internal cycle schedule faults the SRAM model.
    pub fn pop_min(&mut self) -> Option<(Tag, PacketRef, LinkAddr)> {
        let base = self.clock.now();
        let (addr, link) = self.head?;
        if self.len == 0 {
            // The occupancy counter says empty while the head register
            // still points at a link: an in-range flipped next-pointer
            // steered the list into a cycle or onto the free chain.
            // The counter lives outside the faultable SRAM, so trust it
            // and stop serving — chasing the phantom chain never ends.
            assert!(
                self.tolerant,
                "tag store head live with zero occupancy (corrupted link chain)"
            );
            self.head = None;
            self.corruptions.push(StoreCorruption {
                addr: addr.0,
                cycle: base,
            });
            return None;
        }
        // Read slot 0: refill the head register from the successor link.
        self.head = link.next.map(|next| (next, self.read_slot(base, 0, next)));
        // Write slot 2: thread the freed link onto the empty list.
        self.free_link(base, addr, link);
        self.len -= 1;
        self.clock.advance(self.slot_cycles());
        Some((link.tag, link.payload, addr))
    }

    /// Removes and returns the **largest** tag — the list tail — plus the
    /// address it occupied and the predecessor link (address and tag)
    /// that now ends the list, so the caller can reconcile the
    /// translation table. Among duplicates of the maximum the
    /// most-recently-inserted departs (the tail-most link, since
    /// duplicates sit in insertion order).
    ///
    /// This is the push-out primitive of programmable admission (Alcoz
    /// et al.): evict the lowest-priority queued packet to admit a
    /// higher-priority arrival. The tail search walks the list through
    /// the uncharged debug port — a modeling idealization standing in
    /// for the tail register real PIFO push-out hardware maintains — and
    /// the unlink itself is charged one ordinary slot (predecessor read,
    /// predecessor write, freed-link write).
    ///
    /// # Panics
    ///
    /// Panics if the internal cycle schedule faults the SRAM model.
    #[allow(clippy::type_complexity)]
    pub fn pop_max(&mut self) -> Option<(Tag, PacketRef, LinkAddr, Option<(LinkAddr, Tag)>)> {
        let (head_addr, head_link) = self.head?;
        let base = self.clock.now();
        // Uncharged tail search (see above), bounded by the occupancy
        // counter: a list of `len` links has `len - 1` hops, so a walk
        // still going past that bound is chasing a corrupted pointer
        // cycle. Truncate there (tolerant) rather than walk forever.
        let mut prev: Option<(LinkAddr, Link)> = None;
        let mut cur = (head_addr, head_link);
        let mut hops = self.len.saturating_sub(1);
        while let Some(next) = cur.1.next {
            if hops == 0 {
                assert!(
                    self.tolerant,
                    "tag store tail walk exceeded occupancy (corrupted link chain)"
                );
                self.corruptions.push(StoreCorruption {
                    addr: cur.0 .0,
                    cycle: base,
                });
                cur.1.next = None;
                break;
            }
            hops -= 1;
            let link = self
                .layout
                .unpack(self.sram.peek(next.0 as usize).expect("valid link address"));
            prev = Some(cur);
            cur = (next, link);
        }
        let (tail_addr, tail_link) = cur;
        let pred = match prev {
            None => {
                // The tail is the head: the list empties.
                self.head = None;
                None
            }
            Some((prev_addr, _)) => {
                // Read slot 1: the predecessor (charged — the peek walk
                // only located it); write slot 2: terminate the list.
                let mut prev_link = self.read_slot(base, 1, prev_addr);
                prev_link.next = None;
                self.write_slot(base, 2, prev_addr, prev_link);
                if self.head.map(|(a, _)| a) == Some(prev_addr) {
                    // Keep the head register's mirror coherent.
                    self.head = Some((prev_addr, prev_link));
                }
                Some((prev_addr, prev_link.tag))
            }
        };
        // Write slot 3: thread the freed tail onto the empty list.
        let mut freed = tail_link;
        freed.next = self.empty_head;
        self.write_slot(base, 3, tail_addr, freed);
        self.empty_head = Some(tail_addr);
        self.len -= 1;
        self.clock.advance(self.slot_cycles());
        Some((tail_link.tag, tail_link.payload, tail_addr, pred))
    }

    /// The paper's simultaneous store + serve: pops the minimum and
    /// inserts `tag` in the *same* four-cycle slot by reusing the freed
    /// head link as the new link's storage.
    ///
    /// Returns the new link's address and the popped entry. On an empty
    /// store this degenerates to a plain insert.
    ///
    /// # Errors
    ///
    /// Returns [`StoreFullError`] only when the store is empty **and**
    /// full — i.e. never in practice, but the signature keeps the
    /// degenerate path honest.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `prev` violates the sort order, and in
    /// all builds if the internal cycle schedule faults the SRAM model.
    #[allow(clippy::type_complexity)]
    pub fn insert_and_pop(
        &mut self,
        prev: Option<LinkAddr>,
        tag: Tag,
        payload: PacketRef,
    ) -> Result<(LinkAddr, Option<(Tag, PacketRef, LinkAddr)>), StoreFullError> {
        let Some((popped_addr, popped_link)) = self.head else {
            let addr = self.insert(prev, tag, payload)?;
            return Ok((addr, None));
        };
        let base = self.clock.now();
        // Read slot 0: refill the head register from the successor.
        self.head = popped_link
            .next
            .map(|next| (next, self.read_slot(base, 0, next)));
        // The freed link is reused directly — no empty-list traffic.
        let new_addr = popped_addr;
        // `prev` may be the link we just popped; the insert then lands at
        // the head of the remaining list (the closest-match guarantee
        // makes the new tag smaller than every remaining tag).
        let effective_prev = if prev == Some(popped_addr) {
            None
        } else {
            prev
        };
        match effective_prev {
            None => {
                debug_assert!(
                    self.tolerant || self.head.is_none_or(|(_, h)| tag <= h.tag),
                    "head insert with {tag} above current head"
                );
                let link = Link {
                    tag,
                    payload,
                    next: self.head.map(|(a, _)| a),
                };
                // Write slot 3: the new link.
                self.write_slot(base, 3, new_addr, link);
                self.head = Some((new_addr, link));
            }
            Some(prev_addr) => {
                // Read slot 1: predecessor; write slots 2–3 follow.
                let mut prev_link = self.read_slot(base, 1, prev_addr);
                debug_assert!(self.tolerant || prev_link.tag <= tag);
                let new_link = Link {
                    tag,
                    payload,
                    next: prev_link.next,
                };
                prev_link.next = Some(new_addr);
                self.write_slot(base, 2, prev_addr, prev_link);
                self.write_slot(base, 3, new_addr, new_link);
                if self.head.map(|(a, _)| a) == Some(prev_addr) {
                    self.head = Some((prev_addr, prev_link));
                }
            }
        }
        self.clock.advance(self.slot_cycles());
        Ok((
            new_addr,
            Some((popped_link.tag, popped_link.payload, popped_addr)),
        ))
    }

    /// Consumes one four-cycle slot without touching the memory — used
    /// when an operation is resolved entirely in the datapath (e.g. an
    /// incoming tag smaller than every stored one being served directly,
    /// cut-through) so that slot accounting stays uniform.
    pub fn pass_slot(&mut self) {
        self.clock.advance(self.slot_cycles());
    }

    /// Walks the sorted list yielding each link's address alongside its
    /// contents, without cycle accounting — scrub ground truth (the
    /// translation-table audit rebuilds "most recent duplicate" pointers
    /// from it), not a datapath walk.
    pub fn iter_links(&self) -> impl Iterator<Item = (LinkAddr, Tag, PacketRef)> + '_ {
        let mut cursor = self.head.map(|(a, _)| a);
        std::iter::from_fn(move || {
            let addr = cursor?;
            let link = self
                .layout
                .unpack(self.sram.peek(addr.0 as usize).expect("valid link address"));
            cursor = link.next;
            Some((addr, link.tag, link.payload))
        })
    }

    /// Walks the sorted list without cycle accounting — test/debug
    /// inspection only.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Tag, PacketRef)> + '_ {
        let mut cursor = self.head.map(|(a, _)| a);
        std::iter::from_fn(move || {
            let addr = cursor?;
            let link = self
                .layout
                .unpack(self.sram.peek(addr.0 as usize).expect("valid link address"));
            cursor = link.next;
            Some((link.tag, link.payload))
        })
    }

    /// Number of links currently on the empty list plus never-used
    /// addresses — Fig. 10 bookkeeping, for tests.
    pub fn free_links(&self) -> usize {
        self.capacity - self.len
    }

    fn allocate(&mut self, base: Cycle) -> Result<LinkAddr, StoreFullError> {
        if (self.init_counter as usize) < self.capacity {
            let addr = LinkAddr(self.init_counter);
            self.init_counter += 1;
            return Ok(addr);
        }
        match self.empty_head {
            Some(addr) => {
                // One read to learn the next free link (Fig. 9 step 1).
                let link = self.read_slot(base, 0, addr);
                self.empty_head = link.next;
                Ok(addr)
            }
            None => Err(StoreFullError {
                capacity: self.capacity,
            }),
        }
    }

    fn free_link(&mut self, base: Cycle, addr: LinkAddr, mut link: Link) {
        link.next = self.empty_head;
        self.write_slot(base, 2, addr, link);
        self.empty_head = Some(addr);
    }

    /// Issues slot access `idx` (0–1 reads, 2–3 writes) relative to the
    /// slot base cycle, on the port/offset the memory technology assigns.
    fn read_slot(&mut self, base: Cycle, idx: usize, addr: LinkAddr) -> Link {
        debug_assert!(idx < 2, "slots 0-1 are reads");
        let (port, offset) = self.schedule[idx];
        let word = self
            .sram
            .read_port(base + offset, port, addr.0 as usize)
            .expect("tag store FSM schedule violated the SRAM port model");
        let mut link = self.layout.unpack(word);
        if self.tolerant {
            if let Some(next) = link.next {
                if next.0 as usize >= self.capacity {
                    // A flipped pointer bit escaped the address range:
                    // truncate the list here rather than chase it.
                    link.next = None;
                    self.corruptions.push(StoreCorruption {
                        addr: addr.0,
                        cycle: base + offset,
                    });
                }
            }
        }
        link
    }

    fn write_slot(&mut self, base: Cycle, idx: usize, addr: LinkAddr, link: Link) {
        debug_assert!((2..4).contains(&idx), "slots 2-3 are writes");
        let (port, offset) = self.schedule[idx];
        self.sram
            .write_port(base + offset, port, addr.0 as usize, self.layout.pack(link))
            .expect("tag store FSM schedule violated the SRAM port model");
    }
}

impl FaultTarget for TagStore {
    fn fault_words(&self) -> usize {
        self.capacity
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        self.layout.word_bits()
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        // The head register's mirror of the head link is architecturally
        // separate from the SRAM array — an SEU there stays invisible
        // until the damaged word is next read through a port.
        self.sram.corrupt(word, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize) -> TagStore {
        TagStore::with_geometry(Geometry::paper(), capacity)
    }

    #[test]
    fn paper_fig9_insert_sequence() {
        // Fig. 9: a list holding ... 15 -> 17 ...; tag 16 is inserted
        // after 15 in four cycles (two reads, two writes).
        let mut s = store(16);
        let a15 = s.insert(None, Tag(15), PacketRef(0)).unwrap();
        s.insert(Some(a15), Tag(17), PacketRef(1)).unwrap();
        let before = s.cycles();
        let stats_before = s.sram_stats();
        s.insert(Some(a15), Tag(16), PacketRef(2)).unwrap();
        assert_eq!(s.cycles().since(before), 4);
        let stats = s.sram_stats();
        assert_eq!(stats.reads - stats_before.reads, 1); // predecessor read
        assert_eq!(stats.writes - stats_before.writes, 2); // two writes
        let tags: Vec<u32> = s.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![15, 16, 17]);
    }

    #[test]
    fn every_operation_is_exactly_four_cycles() {
        let mut s = store(64);
        let mut last = s.cycles();
        let a = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        assert_eq!(s.cycles().since(last), 4);
        last = s.cycles();
        s.insert(Some(a), Tag(20), PacketRef(1)).unwrap();
        assert_eq!(s.cycles().since(last), 4);
        last = s.cycles();
        s.pop_min().unwrap();
        assert_eq!(s.cycles().since(last), 4);
        last = s.cycles();
        s.insert_and_pop(None, Tag(5), PacketRef(2)).unwrap();
        assert_eq!(s.cycles().since(last), 4);
    }

    #[test]
    fn pop_serves_ascending_order() {
        let mut s = store(16);
        let a10 = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        let a30 = s.insert(Some(a10), Tag(30), PacketRef(2)).unwrap();
        s.insert(Some(a10), Tag(20), PacketRef(1)).unwrap();
        let _ = a30;
        assert_eq!(
            s.pop_min().map(|(t, p, _)| (t, p)),
            Some((Tag(10), PacketRef(0)))
        );
        assert_eq!(
            s.pop_min().map(|(t, p, _)| (t, p)),
            Some((Tag(20), PacketRef(1)))
        );
        assert_eq!(
            s.pop_min().map(|(t, p, _)| (t, p)),
            Some((Tag(30), PacketRef(2)))
        );
        assert_eq!(s.pop_min(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn peek_min_is_register_only() {
        let mut s = store(16);
        s.insert(None, Tag(42), PacketRef(9)).unwrap();
        let stats = s.sram_stats();
        for _ in 0..100 {
            assert_eq!(s.peek_min(), Some((Tag(42), PacketRef(9))));
        }
        assert_eq!(s.sram_stats(), stats, "peek must not touch memory");
    }

    #[test]
    fn freed_links_are_reused_after_counter_exhausts() {
        // Fig. 10: capacity 4; use all, free some, and keep going.
        let mut s = store(4);
        let mut prev = None;
        for (i, t) in [10u32, 20, 30, 40].iter().enumerate() {
            prev = Some(s.insert(prev, Tag(*t), PacketRef(i as u32)).unwrap());
        }
        assert!(s.insert(prev, Tag(50), PacketRef(4)).is_err());
        s.pop_min().unwrap(); // frees one link
        s.pop_min().unwrap(); // and another
        assert_eq!(s.free_links(), 2);
        // New inserts must reuse the freed addresses.
        let a = s.insert(None, Tag(5), PacketRef(5)).unwrap();
        assert!(a.0 < 4);
        let b = s.insert(Some(a), Tag(6), PacketRef(6)).unwrap();
        assert!(b.0 < 4);
        assert!(s
            .insert(Some(b), Tag(7), PacketRef(7))
            .is_err_and(|e| e.capacity == 4));
        let tags: Vec<u32> = s.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![5, 6, 30, 40]);
    }

    #[test]
    fn simultaneous_insert_and_pop_reuses_the_freed_link() {
        let mut s = store(8);
        let a10 = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        let a12 = s.insert(Some(a10), Tag(12), PacketRef(1)).unwrap();
        let a20 = s.insert(Some(a12), Tag(20), PacketRef(2)).unwrap();
        let before = s.sram_stats();
        let cycles_before = s.cycles();
        // Insert 15 after link 12 while serving the minimum (10).
        let (new_addr, popped) = s.insert_and_pop(Some(a12), Tag(15), PacketRef(3)).unwrap();
        let after = s.sram_stats();
        assert_eq!(
            popped.map(|(t, p, _)| (t, p)),
            Some((Tag(10), PacketRef(0)))
        );
        // The freed head slot stores the incoming link.
        assert_eq!(new_addr, a10);
        // Two reads (head refill + predecessor), two writes — one slot.
        assert_eq!(after.reads - before.reads, 2);
        assert_eq!(after.writes - before.writes, 2);
        assert_eq!(s.cycles().since(cycles_before), 4);
        let tags: Vec<u32> = s.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![12, 15, 20]);
        let _ = a20;
    }

    #[test]
    fn insert_and_pop_where_prev_is_the_departing_head() {
        let mut s = store(8);
        let a10 = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        let a30 = s.insert(Some(a10), Tag(30), PacketRef(1)).unwrap();
        // Closest match of 12 is the head (10) itself; 10 departs in the
        // same slot, so 12 becomes the new head (12 < 30 guaranteed).
        let (_, popped) = s.insert_and_pop(Some(a10), Tag(12), PacketRef(2)).unwrap();
        assert_eq!(popped.map(|(t, _, _)| t), Some(Tag(10)));
        let tags: Vec<u32> = s.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![12, 30]);
        let _ = a30;
    }

    #[test]
    fn insert_and_pop_on_empty_store_is_plain_insert() {
        let mut s = store(8);
        let (addr, popped) = s.insert_and_pop(None, Tag(3), PacketRef(0)).unwrap();
        assert_eq!(popped, None);
        assert_eq!(s.peek_min(), Some((Tag(3), PacketRef(0))));
        let _ = addr;
    }

    #[test]
    fn insert_and_pop_draining_last_element() {
        let mut s = store(8);
        s.insert(None, Tag(10), PacketRef(0)).unwrap();
        let (_, popped) = s.insert_and_pop(None, Tag(4), PacketRef(1)).unwrap();
        assert_eq!(popped.map(|(t, _, _)| t), Some(Tag(10)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_min(), Some((Tag(4), PacketRef(1))));
    }

    #[test]
    fn duplicates_keep_arrival_order() {
        // §III-C: "The sequential storage nature of the linked list
        // allows a first come first served policy."
        let mut s = store(8);
        let first = s.insert(None, Tag(7), PacketRef(1)).unwrap();
        let second = s.insert(Some(first), Tag(7), PacketRef(2)).unwrap();
        s.insert(Some(second), Tag(7), PacketRef(3)).unwrap();
        let served: Vec<u32> = std::iter::from_fn(|| s.pop_min())
            .map(|(_, p, _)| p.index())
            .collect();
        assert_eq!(served, vec![1, 2, 3]);
    }

    #[test]
    fn qdr_memory_halves_the_slot() {
        // The paper's "QDRII ... under development": independent read and
        // write ports overlap the 2R+2W schedule into two cycles.
        use crate::tagstore::MemoryKind;
        let mut s = TagStore::with_geometry_and_memory(Geometry::paper(), 16, MemoryKind::QdrLike);
        assert_eq!(s.slot_cycles(), 2);
        let before = s.cycles();
        let a10 = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        assert_eq!(s.cycles().since(before), 2);
        let before = s.cycles();
        s.insert(Some(a10), Tag(20), PacketRef(1)).unwrap();
        assert_eq!(s.cycles().since(before), 2);
        let before = s.cycles();
        s.insert_and_pop(Some(a10), Tag(15), PacketRef(2)).unwrap();
        assert_eq!(s.cycles().since(before), 2);
        let before = s.cycles();
        s.pop_min().unwrap();
        assert_eq!(s.cycles().since(before), 2);
        let tags: Vec<u32> = s.iter_sorted().map(|(t, _)| t.value()).collect();
        assert_eq!(tags, vec![20]);
    }

    #[test]
    fn qdr_functionally_identical_to_single_port() {
        use crate::tagstore::MemoryKind;
        let mut sp = TagStore::with_geometry(Geometry::paper(), 64);
        let mut qd = TagStore::with_geometry_and_memory(Geometry::paper(), 64, MemoryKind::QdrLike);
        // Descending head inserts followed by interleaved pops exercise
        // every path (alloc, head insert, free list, refill) on both
        // technologies identically.
        for (i, t) in (0..50u32).rev().enumerate() {
            sp.insert(None, Tag(t * 80), PacketRef(i as u32)).unwrap();
            qd.insert(None, Tag(t * 80), PacketRef(i as u32)).unwrap();
            if i % 3 == 2 {
                assert_eq!(
                    sp.pop_min().map(|(t, p, _)| (t, p)),
                    qd.pop_min().map(|(t, p, _)| (t, p))
                );
            }
        }
        let a: Vec<_> = sp.iter_sorted().collect();
        let b: Vec<_> = qd.iter_sorted().collect();
        assert_eq!(a, b);
        // Same accesses, half the cycles.
        assert_eq!(sp.sram_stats().accesses(), qd.sram_stats().accesses());
        assert_eq!(sp.cycles().value(), 2 * qd.cycles().value());
    }

    #[test]
    fn layout_roundtrip() {
        let l = StoreLayout::new(12, 20, 24);
        for link in [
            Link {
                tag: Tag(0),
                payload: PacketRef(0),
                next: None,
            },
            Link {
                tag: Tag(4095),
                payload: PacketRef((1 << 24) - 1),
                next: Some(LinkAddr((1 << 20) - 2)),
            },
            Link {
                tag: Tag(1234),
                payload: PacketRef(567),
                next: Some(LinkAddr(0)),
            },
        ] {
            assert_eq!(l.unpack(l.pack(link)), link);
        }
    }

    #[test]
    fn layout_for_headline_capacity() {
        // §IV: 30 million packets in external SRAM with 12-bit tags.
        let l = StoreLayout::for_geometry(Geometry::paper(), 30_000_000);
        assert!(l.max_capacity() >= 30_000_000);
        assert!(l.word_bits() <= 64);
        assert!(l.payload_bits >= 24, "payload field too narrow");
    }

    #[test]
    #[should_panic(expected = "exceeds layout maximum")]
    fn capacity_beyond_layout_rejected() {
        let _ = TagStore::new(StoreLayout::new(12, 4, 8), 16);
    }

    #[test]
    fn full_error_is_informative() {
        assert_eq!(
            StoreFullError { capacity: 4 }.to_string(),
            "tag storage memory full (4 links)"
        );
    }

    #[test]
    fn tolerant_mode_truncates_corrupted_next_pointers() {
        let mut s = store(8);
        s.set_tolerant(true);
        let a10 = s.insert(None, Tag(10), PacketRef(0)).unwrap();
        let a20 = s.insert(Some(a10), Tag(20), PacketRef(1)).unwrap();
        s.insert(Some(a20), Tag(30), PacketRef(2)).unwrap();
        // Smash 20's next-pointer field out of range: 20's next is link 2,
        // and 0b0010 ^ 0b1011 = 0b1001 = 9, past capacity 8 but short of
        // the NIL code 15 (an odd flip count, so parity trips too).
        let ptr_shift = s.layout.tag_bits() + s.layout.payload_bits();
        s.inject_fault(a20.0 as usize, 0b1011 << ptr_shift);
        assert_eq!(s.pop_min().map(|(t, _, _)| t), Some(Tag(10)));
        // The read of 20's word sanitizes the pointer: list ends there.
        assert_eq!(s.pop_min().map(|(t, _, _)| t), Some(Tag(20)));
        assert_eq!(s.pop_min(), None);
        let c = s.take_corruptions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].addr, a20.0);
        assert!(s.take_corruptions().is_empty());
        // The two damaged-word reads also tripped parity.
        assert!(!s.take_parity_alarms().is_empty());
    }

    #[test]
    fn fault_target_exposes_link_words() {
        let mut s = store(8);
        assert_eq!(s.fault_words(), 8);
        assert_eq!(s.fault_word_bits(0), s.layout.word_bits());
        s.insert(None, Tag(10), PacketRef(0)).unwrap();
        // Tag bit 0 flip: the stored word changes, the head register's
        // mirror does not — the upset is latent until the word is re-read.
        s.inject_fault(0, 1);
        assert_eq!(s.peek_min(), Some((Tag(10), PacketRef(0))));
        let (tag, _) = s.iter_sorted().next().unwrap();
        assert_eq!(tag, Tag(11));
    }
}
