//! Lazily-allocated, page-granular backing store for the translation
//! table — the memory model that lets paper-scale populations fit.
//!
//! The paper sizes the circuit for 8 M sessions; a table with one eager
//! entry per representable tag value (`B^L`, up to 2^30) would dwarf the
//! tags actually *live* at any instant, which the recycling protocol
//! bounds by the in-flight window. [`PagedTranslationTable`] keeps the
//! exact array semantics of the eager `Vec` while materializing fixed
//! [`PAGE_ENTRIES`]-sized pages only when an entry in them is first
//! written, and dropping pages again when a section recycle wipes their
//! whole span — so resident memory tracks the live-tag window instead of
//! the tag space.
//!
//! The structure is deliberately *just* the slot array: access
//! accounting, geometry checks, and the fault-encoding contract stay in
//! [`TranslationTable`](crate::TranslationTable), which delegates here
//! when switched into paged mode. That keeps one source of truth for the
//! semantics the equivalence suite pins: a paged table and an eager
//! table driven by the same operations are indistinguishable through the
//! public API.

use crate::tagstore::LinkAddr;

/// Entries per lazily-allocated page (32 KiB of `Option<LinkAddr>` at
/// the current 8-byte entry): small enough that a narrow live-tag window
/// keeps few pages resident, large enough that the page directory stays
/// negligible even for a 2^30-entry tag space.
pub const PAGE_ENTRIES: usize = 4096;

/// A translation-table slot array with lazily-allocated pages.
///
/// Semantically identical to `vec![None; entries]`: reads of
/// never-written entries return `None`, and writes materialize the
/// covering page on demand. [`PagedTranslationTable::clear_range`]
/// additionally *frees* pages whose whole span is wiped, which is what
/// ties resident memory to the live-tag window under section recycling.
///
/// # Example
///
/// ```
/// use tagsort::{LinkAddr, PagedTranslationTable};
///
/// let mut t = PagedTranslationTable::new(1 << 20);
/// assert_eq!(t.resident_entries(), 0); // nothing materialized yet
/// t.set(7, Some(LinkAddr(42)));
/// assert_eq!(t.get(7), Some(LinkAddr(42)));
/// assert_eq!(t.get(8), None);
/// assert!(t.resident_entries() < t.entries());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PagedTranslationTable {
    entries: usize,
    pages: Vec<Option<Box<[Option<LinkAddr>]>>>,
    resident: usize,
    peak_resident: usize,
}

impl PagedTranslationTable {
    /// Creates an all-`None` array of `entries` slots with no pages
    /// resident.
    pub fn new(entries: usize) -> Self {
        Self {
            entries,
            pages: (0..entries.div_ceil(PAGE_ENTRIES)).map(|_| None).collect(),
            resident: 0,
            peak_resident: 0,
        }
    }

    /// Number of addressable entries (the eager array's length).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Entries currently materialized (resident pages × page size).
    pub fn resident_entries(&self) -> usize {
        (self.resident * PAGE_ENTRIES).min(self.entries)
    }

    /// High-water mark of [`PagedTranslationTable::resident_entries`].
    pub fn peak_resident_entries(&self) -> usize {
        (self.peak_resident * PAGE_ENTRIES).min(self.entries)
    }

    /// The entry at `index`; `None` when the covering page was never
    /// materialized (exactly the eager array's initial state).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> Option<LinkAddr> {
        assert!(index < self.entries, "entry {index} out of range");
        match &self.pages[index / PAGE_ENTRIES] {
            Some(page) => page[index % PAGE_ENTRIES],
            None => None,
        }
    }

    /// Stores `value` at `index`, materializing the covering page when
    /// needed. Storing `None` into a non-resident page is a no-op (the
    /// page already reads as all-`None`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, value: Option<LinkAddr>) {
        assert!(index < self.entries, "entry {index} out of range");
        let page = index / PAGE_ENTRIES;
        match (&mut self.pages[page], value) {
            (Some(p), v) => p[index % PAGE_ENTRIES] = v,
            (slot @ None, Some(_)) => {
                let mut p = vec![None; PAGE_ENTRIES].into_boxed_slice();
                p[index % PAGE_ENTRIES] = value;
                *slot = Some(p);
                self.resident += 1;
                self.peak_resident = self.peak_resident.max(self.resident);
            }
            (None, None) => {}
        }
    }

    /// Clears `len` entries starting at `start`. Pages entirely inside
    /// the range are *freed* (resident memory shrinks); pages only
    /// partially covered are cleared entry-by-entry.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the array.
    pub fn clear_range(&mut self, start: usize, len: usize) {
        let end = start.checked_add(len).expect("range overflow");
        assert!(end <= self.entries, "range {start}..{end} out of bounds");
        let mut i = start;
        while i < end {
            let page = i / PAGE_ENTRIES;
            let page_start = page * PAGE_ENTRIES;
            let page_end = (page_start + PAGE_ENTRIES).min(self.entries);
            if i == page_start && end >= page_end {
                // Whole page covered: drop it.
                if self.pages[page].take().is_some() {
                    self.resident -= 1;
                }
                i = page_end;
            } else {
                if let Some(p) = &mut self.pages[page] {
                    for slot in &mut p[i - page_start..end.min(page_end) - page_start] {
                        *slot = None;
                    }
                }
                i = end.min(page_end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_default_to_none_without_materializing() {
        let t = PagedTranslationTable::new(3 * PAGE_ENTRIES);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(3 * PAGE_ENTRIES - 1), None);
        assert_eq!(t.resident_entries(), 0);
    }

    #[test]
    fn writes_materialize_exactly_one_page() {
        let mut t = PagedTranslationTable::new(3 * PAGE_ENTRIES);
        t.set(PAGE_ENTRIES + 5, Some(LinkAddr(9)));
        assert_eq!(t.get(PAGE_ENTRIES + 5), Some(LinkAddr(9)));
        assert_eq!(t.resident_entries(), PAGE_ENTRIES);
        // Clearing within a resident page keeps the page.
        t.set(PAGE_ENTRIES + 5, None);
        assert_eq!(t.resident_entries(), PAGE_ENTRIES);
        // Writing None to a non-resident page allocates nothing.
        t.set(0, None);
        assert_eq!(t.resident_entries(), PAGE_ENTRIES);
    }

    #[test]
    fn clear_range_frees_whole_pages_and_trims_partials() {
        let mut t = PagedTranslationTable::new(4 * PAGE_ENTRIES);
        for page in 0..4 {
            t.set(page * PAGE_ENTRIES + 42, Some(LinkAddr(page as u32)));
        }
        assert_eq!(t.resident_entries(), 4 * PAGE_ENTRIES);
        assert_eq!(t.peak_resident_entries(), 4 * PAGE_ENTRIES);
        // Covers page 1 fully, pages 0 and 2 partially (last/first 10).
        t.clear_range(PAGE_ENTRIES - 10, PAGE_ENTRIES + 20);
        assert_eq!(t.resident_entries(), 3 * PAGE_ENTRIES);
        assert_eq!(t.get(PAGE_ENTRIES + 42), None);
        assert_eq!(t.get(42), Some(LinkAddr(0)));
        // Page 2's marker sits past the 10 cleared entries, so it stays.
        assert_eq!(t.get(2 * PAGE_ENTRIES + 42), Some(LinkAddr(2)));
        // Peak is a high-water mark; it does not shrink.
        assert_eq!(t.peak_resident_entries(), 4 * PAGE_ENTRIES);
    }

    #[test]
    fn tail_page_may_be_short() {
        let mut t = PagedTranslationTable::new(PAGE_ENTRIES + 7);
        t.set(PAGE_ENTRIES + 6, Some(LinkAddr(1)));
        assert_eq!(t.resident_entries(), PAGE_ENTRIES);
        // The 7-entry tail span covers the whole (short) tail page.
        t.clear_range(PAGE_ENTRIES, 7);
        assert_eq!(t.resident_entries(), 0);
        assert_eq!(t.get(PAGE_ENTRIES + 6), None);
    }
}
