//! The address translation table (paper §III-D, Fig. 11).
//!
//! The table bridges the search tree and the tag storage memory: for each
//! tag value the tree can represent, it records the physical address of
//! the **most recently inserted** link carrying that value. Tracking the
//! most recent duplicate is what keeps tree results valid when several
//! packets share a (rounded) tag value, and it is the property that lets
//! the search and storage sides scale independently.

use faultsim::FaultTarget;
use hwsim::AccessStats;

use crate::geometry::Geometry;
use crate::tag::Tag;
use crate::tagstore::LinkAddr;

/// Bit position of the entry-presence flag in the fault encoding of a
/// translation entry (`Some(addr)` ⇔ bit 32 set, address in bits 0..32).
const PRESENCE_BIT: u32 = 32;

/// Tag value → most-recent link address.
///
/// The table has exactly `B^L` entries (paper: "for each possible tag
/// value that the tree can store, there must be a corresponding entry").
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, Tag, TranslationTable, LinkAddr};
///
/// let mut table = TranslationTable::new(Geometry::paper());
/// assert_eq!(table.entries(), 4096);
/// table.set(Tag(5), LinkAddr(42));
/// assert_eq!(table.get(Tag(5)), Some(LinkAddr(42)));
/// table.set(Tag(5), LinkAddr(99)); // a duplicate arrived later
/// assert_eq!(table.get(Tag(5)), Some(LinkAddr(99)));
/// ```
#[derive(Debug, Clone)]
pub struct TranslationTable {
    geometry: Geometry,
    slots: Vec<Option<LinkAddr>>,
    stats: AccessStats,
}

impl TranslationTable {
    /// Creates an empty table sized for the geometry's tag space.
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            slots: vec![None; geometry.translation_entries() as usize],
            stats: AccessStats::new(),
        }
    }

    /// Number of entries (the paper's `N_T = B^L`).
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    /// The geometry the table was sized for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Memory-access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Address of the most recent link with value `tag`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn get(&mut self, tag: Tag) -> Option<LinkAddr> {
        self.stats.record_read();
        self.slots[self.index(tag)]
    }

    /// Records `addr` as the most recent link carrying `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn set(&mut self, tag: Tag, addr: LinkAddr) {
        self.stats.record_write();
        let i = self.index(tag);
        self.slots[i] = Some(addr);
    }

    /// Clears `tag`'s entry (its last instance left the system).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn clear(&mut self, tag: Tag) {
        self.stats.record_write();
        let i = self.index(tag);
        self.slots[i] = None;
    }

    /// Clears every entry in one top-level section, mirroring
    /// [`MultiBitTrie::clear_section`](crate::MultiBitTrie::clear_section).
    /// Accounted as a single isolation write, like the tree's bulk delete.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn clear_section(&mut self, section: u32) {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        self.stats.record_write();
        let span = self.slots.len() / self.geometry.branching() as usize;
        let start = section as usize * span;
        for slot in &mut self.slots[start..start + span] {
            *slot = None;
        }
    }

    /// Reads `tag`'s entry without access accounting — scrub ground
    /// truth, not a datapath lookup (keeps the Table-I access model
    /// honest while the scrubber audits state out of band).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn peek(&self, tag: Tag) -> Option<LinkAddr> {
        self.slots[self.index(tag)]
    }

    fn index(&self, tag: Tag) -> usize {
        assert!(
            self.geometry.contains(tag),
            "{tag} does not fit a {}-bit geometry",
            self.geometry.tag_bits()
        );
        tag.value() as usize
    }
}

impl FaultTarget for TranslationTable {
    fn fault_words(&self) -> usize {
        self.slots.len()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        // 32 address bits plus the presence flag: a flip of bit 32 models
        // an upset in the entry-valid sideband, lower flips hit the
        // stored link address.
        PRESENCE_BIT + 1
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        let encode = |slot: Option<LinkAddr>| match slot {
            Some(a) => (1u64 << PRESENCE_BIT) | u64::from(a.0),
            None => 0,
        };
        let old = encode(self.slots[word]);
        let new = old ^ mask;
        self.slots[word] = if new >> PRESENCE_BIT & 1 == 1 {
            Some(LinkAddr((new & 0xffff_ffff) as u32))
        } else {
            None
        };
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_by_geometry() {
        assert_eq!(TranslationTable::new(Geometry::paper()).entries(), 4096);
        assert_eq!(
            TranslationTable::new(Geometry::paper_wide()).entries(),
            32 * 1024
        );
    }

    #[test]
    fn duplicate_tracking_keeps_most_recent() {
        // Paper Fig. 11: when a second "5" is inserted, the pointer moves
        // from the older link to the newest one.
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(5), LinkAddr(1));
        t.set(Tag(5), LinkAddr(2));
        assert_eq!(t.get(Tag(5)), Some(LinkAddr(2)));
    }

    #[test]
    fn clear_removes_entry() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(9), LinkAddr(3));
        t.clear(Tag(9));
        assert_eq!(t.get(Tag(9)), None);
    }

    #[test]
    fn clear_section_wipes_range() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(0xa00), LinkAddr(1));
        t.set(Tag(0xaff), LinkAddr(2));
        t.set(Tag(0xb00), LinkAddr(3));
        t.clear_section(0xa);
        assert_eq!(t.get(Tag(0xa00)), None);
        assert_eq!(t.get(Tag(0xaff)), None);
        assert_eq!(t.get(Tag(0xb00)), Some(LinkAddr(3)));
    }

    #[test]
    fn stats_count_accesses() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(1), LinkAddr(1));
        let _ = t.get(Tag(1));
        t.clear(Tag(1));
        assert_eq!(t.stats().reads(), 1);
        assert_eq!(t.stats().writes(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_tag_rejected() {
        let mut t = TranslationTable::new(Geometry::paper());
        let _ = t.get(Tag(4096));
    }

    #[test]
    fn peek_reads_without_accounting() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(7), LinkAddr(11));
        let reads_before = t.stats().reads();
        assert_eq!(t.peek(Tag(7)), Some(LinkAddr(11)));
        assert_eq!(t.peek(Tag(8)), None);
        assert_eq!(t.stats().reads(), reads_before);
    }

    #[test]
    fn fault_encoding_round_trips_presence_and_address() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(3), LinkAddr(0b101));
        assert_eq!(t.fault_words(), 4096);
        assert_eq!(t.fault_word_bits(3), 33);
        // Address-bit flip: entry stays present with a damaged pointer.
        assert_eq!(t.inject_fault(3, 0b110), (1 << 32) | 0b101);
        assert_eq!(t.peek(Tag(3)), Some(LinkAddr(0b011)));
        // Presence-bit flip: the entry vanishes (a dropped valid bit).
        t.inject_fault(3, 1 << 32);
        assert_eq!(t.peek(Tag(3)), None);
        // Presence-bit flip on an empty entry conjures a bogus pointer.
        t.inject_fault(9, 1 << 32);
        assert_eq!(t.peek(Tag(9)), Some(LinkAddr(0)));
    }
}
