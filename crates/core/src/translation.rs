//! The address translation table (paper §III-D, Fig. 11).
//!
//! The table bridges the search tree and the tag storage memory: for each
//! tag value the tree can represent, it records the physical address of
//! the **most recently inserted** link carrying that value. Tracking the
//! most recent duplicate is what keeps tree results valid when several
//! packets share a (rounded) tag value, and it is the property that lets
//! the search and storage sides scale independently.

use faultsim::FaultTarget;
use hwsim::AccessStats;

use crate::geometry::Geometry;
use crate::paged::PagedTranslationTable;
use crate::tag::Tag;
use crate::tagstore::LinkAddr;

/// Bit position of the entry-presence flag in the fault encoding of a
/// translation entry (`Some(addr)` ⇔ bit 32 set, address in bits 0..32).
const PRESENCE_BIT: u32 = 32;

/// Finalizer of the splitmix64 generator — mixes one entry's
/// `(index, presence, address)` encoding into a 64-bit digest whose
/// XOR over a section is the section's check code. XOR-combining is
/// what makes the code incrementally maintainable: a write updates it
/// as `crc ^= digest(old) ^ digest(new)` without re-reading the
/// section.
fn entry_digest(index: usize, slot: Option<LinkAddr>) -> u64 {
    let Some(addr) = slot else {
        return 0; // empty entries contribute nothing: a fresh section checks as zero
    };
    let mut z = ((index as u64) << (PRESENCE_BIT + 1)) | (1u64 << PRESENCE_BIT) | u64::from(addr.0);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The slot array behind the table: one eager `Vec` entry per
/// representable tag value, or the lazily-paged store campaigns use for
/// paper-scale tag spaces. Both reprs are driven through the same
/// accessors below, so they are observationally identical.
#[derive(Debug, Clone)]
enum Slots {
    Eager(Vec<Option<LinkAddr>>),
    Paged(PagedTranslationTable),
}

impl Slots {
    fn len(&self) -> usize {
        match self {
            Slots::Eager(v) => v.len(),
            Slots::Paged(p) => p.entries(),
        }
    }

    fn get(&self, index: usize) -> Option<LinkAddr> {
        match self {
            Slots::Eager(v) => v[index],
            Slots::Paged(p) => p.get(index),
        }
    }

    fn set(&mut self, index: usize, value: Option<LinkAddr>) {
        match self {
            Slots::Eager(v) => v[index] = value,
            Slots::Paged(p) => p.set(index, value),
        }
    }

    fn clear_range(&mut self, start: usize, len: usize) {
        match self {
            Slots::Eager(v) => {
                for slot in &mut v[start..start + len] {
                    *slot = None;
                }
            }
            Slots::Paged(p) => p.clear_range(start, len),
        }
    }
}

/// Tag value → most-recent link address.
///
/// The table has exactly `B^L` entries (paper: "for each possible tag
/// value that the tree can store, there must be a corresponding entry").
///
/// # Example
///
/// ```
/// use tagsort::{Geometry, Tag, TranslationTable, LinkAddr};
///
/// let mut table = TranslationTable::new(Geometry::paper());
/// assert_eq!(table.entries(), 4096);
/// table.set(Tag(5), LinkAddr(42));
/// assert_eq!(table.get(Tag(5)), Some(LinkAddr(42)));
/// table.set(Tag(5), LinkAddr(99)); // a duplicate arrived later
/// assert_eq!(table.get(Tag(5)), Some(LinkAddr(99)));
/// ```
#[derive(Debug, Clone)]
pub struct TranslationTable {
    geometry: Geometry,
    slots: Slots,
    stats: AccessStats,
    /// Running per-section check codes (one per top-level section),
    /// updated on every datapath write. [`FaultTarget::inject_fault`]
    /// deliberately bypasses them — a soft error does not update the
    /// checker — which is what lets a scrub pass *detect* damage by
    /// recomputing the code from content and comparing.
    section_crcs: Vec<u64>,
}

impl TranslationTable {
    /// Creates an empty table sized for the geometry's tag space.
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            slots: Slots::Eager(vec![None; geometry.translation_entries() as usize]),
            stats: AccessStats::new(),
            section_crcs: vec![0; geometry.branching() as usize],
        }
    }

    /// Creates an empty table in paged mode: entries materialize in
    /// [`PagedTranslationTable`] pages on first write, so memory is
    /// proportional to live tags instead of the tag space.
    pub fn new_paged(geometry: Geometry) -> Self {
        Self {
            geometry,
            slots: Slots::Paged(PagedTranslationTable::new(
                geometry.translation_entries() as usize
            )),
            stats: AccessStats::new(),
            section_crcs: vec![0; geometry.branching() as usize],
        }
    }

    /// Switches an **empty** table into paged mode (no-op when already
    /// paged). The two modes are observationally identical — the
    /// equivalence suite pins that — so this only changes the memory
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if any entry is present (mode switches are a construction-
    /// time decision, not a live migration).
    pub fn set_paged(&mut self) {
        if let Slots::Eager(v) = &self.slots {
            assert!(
                v.iter().all(Option::is_none),
                "set_paged requires an empty translation table"
            );
            self.slots = Slots::Paged(PagedTranslationTable::new(v.len()));
        }
    }

    /// Whether the table is in paged mode.
    pub fn is_paged(&self) -> bool {
        matches!(self.slots, Slots::Paged(_))
    }

    /// `(resident, peak_resident, total)` entry counts. Eager tables are
    /// always fully resident.
    pub fn resident_entries(&self) -> (usize, usize, usize) {
        match &self.slots {
            Slots::Eager(v) => (v.len(), v.len(), v.len()),
            Slots::Paged(p) => (p.resident_entries(), p.peak_resident_entries(), p.entries()),
        }
    }

    /// Number of entries (the paper's `N_T = B^L`).
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    /// The geometry the table was sized for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Memory-access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Address of the most recent link with value `tag`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn get(&mut self, tag: Tag) -> Option<LinkAddr> {
        self.stats.record_read();
        let i = self.index(tag);
        self.slots.get(i)
    }

    /// Records `addr` as the most recent link carrying `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn set(&mut self, tag: Tag, addr: LinkAddr) {
        self.stats.record_write();
        let i = self.index(tag);
        self.write_checked(i, Some(addr));
    }

    /// Clears `tag`'s entry (its last instance left the system).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn clear(&mut self, tag: Tag) {
        self.stats.record_write();
        let i = self.index(tag);
        self.write_checked(i, None);
    }

    /// Writes one slot keeping its section's running check code in
    /// step (the datapath write path; fault injection bypasses this).
    fn write_checked(&mut self, index: usize, value: Option<LinkAddr>) {
        let old = self.slots.get(index);
        let section = self.section_of_index(index);
        self.section_crcs[section] ^= entry_digest(index, old) ^ entry_digest(index, value);
        self.slots.set(index, value);
    }

    /// Entries per top-level section.
    fn section_span(&self) -> usize {
        self.slots.len() / self.geometry.branching() as usize
    }

    fn section_of_index(&self, index: usize) -> usize {
        index / self.section_span()
    }

    /// Clears every entry in one top-level section, mirroring
    /// [`MultiBitTrie::clear_section`](crate::MultiBitTrie::clear_section).
    /// Accounted as a single isolation write, like the tree's bulk delete.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn clear_section(&mut self, section: u32) {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        self.stats.record_write();
        let span = self.section_span();
        let start = section as usize * span;
        self.slots.clear_range(start, span);
        // An all-empty section digests to zero.
        self.section_crcs[section as usize] = 0;
    }

    /// Whether `section`'s running check code still matches a fresh
    /// recomputation from content. `false` means a write landed that
    /// did not go through the datapath — i.e. a fault — even if the
    /// damaged entry was later legitimately overwritten (the running
    /// code latched the discrepancy). Out-of-band audit traffic: no
    /// access accounting.
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn verify_section_crc(&self, section: u32) -> bool {
        self.section_crcs[section as usize] == self.computed_section_crc(section)
    }

    /// Re-latches `section`'s running check code onto the current
    /// content — the last step of a repair (or of accepting the content
    /// as the new baseline when no ground truth exists to rebuild from).
    ///
    /// # Panics
    ///
    /// Panics if `section` is not below the branching factor.
    pub fn resync_section_crc(&mut self, section: u32) {
        self.section_crcs[section as usize] = self.computed_section_crc(section);
    }

    fn computed_section_crc(&self, section: u32) -> u64 {
        assert!(
            section < self.geometry.branching(),
            "section {section} out of range"
        );
        let span = self.section_span();
        let start = section as usize * span;
        (start..start + span)
            .map(|i| entry_digest(i, self.slots.get(i)))
            .fold(0, |acc, d| acc ^ d)
    }

    /// Reads `tag`'s entry without access accounting — scrub ground
    /// truth, not a datapath lookup (keeps the Table-I access model
    /// honest while the scrubber audits state out of band).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit the geometry.
    pub fn peek(&self, tag: Tag) -> Option<LinkAddr> {
        self.slots.get(self.index(tag))
    }

    fn index(&self, tag: Tag) -> usize {
        assert!(
            self.geometry.contains(tag),
            "{tag} does not fit a {}-bit geometry",
            self.geometry.tag_bits()
        );
        tag.value() as usize
    }
}

impl FaultTarget for TranslationTable {
    fn fault_words(&self) -> usize {
        self.slots.len()
    }

    fn fault_word_bits(&self, _word: usize) -> u32 {
        // 32 address bits plus the presence flag: a flip of bit 32 models
        // an upset in the entry-valid sideband, lower flips hit the
        // stored link address.
        PRESENCE_BIT + 1
    }

    fn inject_fault(&mut self, word: usize, mask: u64) -> u64 {
        let encode = |slot: Option<LinkAddr>| match slot {
            Some(a) => (1u64 << PRESENCE_BIT) | u64::from(a.0),
            None => 0,
        };
        let old = encode(self.slots.get(word));
        let new = old ^ mask;
        // A presence-bit flip on a never-materialized paged entry
        // conjures the same bogus `Some(LinkAddr(0))` the eager table
        // produces — the page materializes to hold it.
        self.slots.set(
            word,
            if new >> PRESENCE_BIT & 1 == 1 {
                Some(LinkAddr((new & 0xffff_ffff) as u32))
            } else {
                None
            },
        );
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_by_geometry() {
        assert_eq!(TranslationTable::new(Geometry::paper()).entries(), 4096);
        assert_eq!(
            TranslationTable::new(Geometry::paper_wide()).entries(),
            32 * 1024
        );
    }

    #[test]
    fn duplicate_tracking_keeps_most_recent() {
        // Paper Fig. 11: when a second "5" is inserted, the pointer moves
        // from the older link to the newest one.
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(5), LinkAddr(1));
        t.set(Tag(5), LinkAddr(2));
        assert_eq!(t.get(Tag(5)), Some(LinkAddr(2)));
    }

    #[test]
    fn clear_removes_entry() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(9), LinkAddr(3));
        t.clear(Tag(9));
        assert_eq!(t.get(Tag(9)), None);
    }

    #[test]
    fn clear_section_wipes_range() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(0xa00), LinkAddr(1));
        t.set(Tag(0xaff), LinkAddr(2));
        t.set(Tag(0xb00), LinkAddr(3));
        t.clear_section(0xa);
        assert_eq!(t.get(Tag(0xa00)), None);
        assert_eq!(t.get(Tag(0xaff)), None);
        assert_eq!(t.get(Tag(0xb00)), Some(LinkAddr(3)));
    }

    #[test]
    fn stats_count_accesses() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(1), LinkAddr(1));
        let _ = t.get(Tag(1));
        t.clear(Tag(1));
        assert_eq!(t.stats().reads(), 1);
        assert_eq!(t.stats().writes(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_tag_rejected() {
        let mut t = TranslationTable::new(Geometry::paper());
        let _ = t.get(Tag(4096));
    }

    #[test]
    fn peek_reads_without_accounting() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(7), LinkAddr(11));
        let reads_before = t.stats().reads();
        assert_eq!(t.peek(Tag(7)), Some(LinkAddr(11)));
        assert_eq!(t.peek(Tag(8)), None);
        assert_eq!(t.stats().reads(), reads_before);
    }

    #[test]
    fn paged_mode_is_observationally_identical() {
        let mut eager = TranslationTable::new(Geometry::paper());
        let mut paged = TranslationTable::new_paged(Geometry::paper());
        assert!(paged.is_paged() && !eager.is_paged());
        let ops: &[(u32, Option<u32>)] = &[
            (5, Some(1)),
            (5, Some(2)),
            (0xa00, Some(3)),
            (0xaff, Some(4)),
            (5, None),
            (0xfff, Some(9)),
        ];
        for &(tag, addr) in ops {
            match addr {
                Some(a) => {
                    eager.set(Tag(tag), LinkAddr(a));
                    paged.set(Tag(tag), LinkAddr(a));
                }
                None => {
                    eager.clear(Tag(tag));
                    paged.clear(Tag(tag));
                }
            }
        }
        eager.clear_section(0xa);
        paged.clear_section(0xa);
        for v in 0..4096 {
            assert_eq!(eager.peek(Tag(v)), paged.peek(Tag(v)), "tag {v}");
        }
        assert_eq!(eager.stats().reads(), paged.stats().reads());
        assert_eq!(eager.stats().writes(), paged.stats().writes());
        let (resident, peak, total) = paged.resident_entries();
        assert!(resident <= peak && peak <= total);
    }

    #[test]
    fn set_paged_converts_an_empty_table() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set_paged();
        assert!(t.is_paged());
        let (resident, _, total) = t.resident_entries();
        assert_eq!(resident, 0);
        assert_eq!(total, 4096);
        t.set(Tag(3), LinkAddr(7));
        assert_eq!(t.get(Tag(3)), Some(LinkAddr(7)));
        // Idempotent once paged.
        t.set_paged();
        assert_eq!(t.peek(Tag(3)), Some(LinkAddr(7)));
    }

    #[test]
    #[should_panic(expected = "empty translation table")]
    fn set_paged_rejects_a_populated_table() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(1), LinkAddr(1));
        t.set_paged();
    }

    #[test]
    fn section_crc_detects_injected_damage_and_resyncs() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(0xa05), LinkAddr(7));
        assert!(t.verify_section_crc(0xa));
        // The fault path writes behind the checker's back.
        t.inject_fault(0xa05, 0b1);
        assert!(!t.verify_section_crc(0xa));
        for section in 0..16u32 {
            if section != 0xa {
                assert!(t.verify_section_crc(section), "section {section}");
            }
        }
        t.resync_section_crc(0xa);
        assert!(t.verify_section_crc(0xa));
    }

    #[test]
    fn section_crc_latches_damage_across_legitimate_overwrites() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(5), LinkAddr(1));
        t.inject_fault(5, 0b10);
        // A later datapath write replaces the damaged word entirely…
        t.set(Tag(5), LinkAddr(9));
        assert_eq!(t.peek(Tag(5)), Some(LinkAddr(9)));
        // …but the running code latched the unaccounted transition.
        assert!(!t.verify_section_crc(0));
    }

    #[test]
    fn clear_section_resets_its_crc() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(0xa05), LinkAddr(7));
        t.inject_fault(0xaff, 1 << 32);
        assert!(!t.verify_section_crc(0xa));
        t.clear_section(0xa);
        assert!(t.verify_section_crc(0xa), "empty section digests to zero");
    }

    #[test]
    fn section_crc_works_in_paged_mode() {
        let mut t = TranslationTable::new_paged(Geometry::paper());
        t.set(Tag(0x305), LinkAddr(4));
        assert!(t.verify_section_crc(3));
        t.inject_fault(0x305, 1 << 32);
        assert!(!t.verify_section_crc(3));
    }

    #[test]
    fn fault_encoding_round_trips_presence_and_address() {
        let mut t = TranslationTable::new(Geometry::paper());
        t.set(Tag(3), LinkAddr(0b101));
        assert_eq!(t.fault_words(), 4096);
        assert_eq!(t.fault_word_bits(3), 33);
        // Address-bit flip: entry stays present with a damaged pointer.
        assert_eq!(t.inject_fault(3, 0b110), (1 << 32) | 0b101);
        assert_eq!(t.peek(Tag(3)), Some(LinkAddr(0b011)));
        // Presence-bit flip: the entry vanishes (a dropped valid bit).
        t.inject_fault(3, 1 << 32);
        assert_eq!(t.peek(Tag(3)), None);
        // Presence-bit flip on an empty entry conjures a bogus pointer.
        t.inject_fault(9, 1 << 32);
        assert_eq!(t.peek(Tag(9)), Some(LinkAddr(0)));
    }
}
