//! Leaf-level memory banking (paper §IV).
//!
//! The fabricated chip builds the bottom tree level from "32 small
//! distributed memory blocks". The reason is the parallel search: the
//! primary descent and the backup/redirect descent can touch *two*
//! different leaf nodes in the same pipeline step, and two accesses can
//! only proceed in one cycle if they land in different single-port
//! banks. This module measures how often they collide for a given bank
//! count — the data behind choosing 32 banks.

use crate::geometry::Geometry;
use crate::trie::SearchTrace;

/// Bank-conflict accounting for the leaf tree level.
///
/// # Example
///
/// ```
/// use tagsort::{BankModel, Geometry, MultiBitTrie, Tag};
///
/// let geometry = Geometry::paper();
/// let mut trie = MultiBitTrie::new(geometry);
/// for v in [100u32, 3000] {
///     trie.insert_marker(Tag(v));
/// }
/// let mut banks = BankModel::new(geometry, 32);
/// let (_, trace) = trie.closest_with_trace(Tag(2000));
/// banks.record(&trace);
/// assert_eq!(banks.searches(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BankModel {
    geometry: Geometry,
    banks: u32,
    searches: u64,
    dual_access_searches: u64,
    conflicts: u64,
}

impl BankModel {
    /// Creates a model with `banks` equal leaf-level banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or exceeds the leaf node count.
    pub fn new(geometry: Geometry, banks: u32) -> Self {
        let leaves = geometry.nodes_at_level(geometry.levels() - 1);
        assert!(
            banks > 0 && u64::from(banks) <= leaves,
            "banks must be 1..={leaves}"
        );
        Self {
            geometry,
            banks,
            searches: 0,
            dual_access_searches: 0,
            conflicts: 0,
        }
    }

    /// The bank a leaf node lives in (block-cyclic assignment).
    pub fn bank_of(&self, leaf_node: u32) -> u32 {
        leaf_node % self.banks
    }

    /// Accounts one search's leaf-level accesses.
    pub fn record(&mut self, trace: &SearchTrace) {
        self.searches += 1;
        let leaf = self.geometry.levels() - 1;
        let nodes: Vec<u32> = trace.at_level(leaf).collect();
        if nodes.len() >= 2 {
            self.dual_access_searches += 1;
            if self.bank_of(nodes[0]) == self.bank_of(nodes[1]) && nodes[0] != nodes[1] {
                self.conflicts += 1;
            }
        }
    }

    /// Total searches recorded.
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Searches that needed two distinct leaf accesses in one step.
    pub fn dual_access_searches(&self) -> u64 {
        self.dual_access_searches
    }

    /// Dual accesses that collided in one bank (each costs one stall
    /// cycle on single-port banks).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Fraction of searches that would stall.
    pub fn conflict_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.searches as f64
        }
    }

    /// Mean search-stage cycles including stalls, against the paper's
    /// four-cycle beat.
    pub fn mean_stage_cycles(&self) -> f64 {
        4.0 + self.conflict_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;
    use crate::trie::MultiBitTrie;

    /// A redirect workload: markers scattered so probes often take the
    /// next-smaller branch and touch two leaves.
    fn conflict_stats(banks: u32, seed: u64) -> BankModel {
        let geometry = Geometry::paper();
        let mut trie = MultiBitTrie::new(geometry);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            trie.insert_marker(Tag((next() % 4096) as u32));
        }
        let mut model = BankModel::new(geometry, banks);
        for _ in 0..2000 {
            let (_, trace) = trie.closest_with_trace(Tag((next() % 4096) as u32));
            model.record(&trace);
        }
        model
    }

    #[test]
    fn more_banks_fewer_conflicts() {
        let one = conflict_stats(1, 7);
        let eight = conflict_stats(8, 7);
        let thirty_two = conflict_stats(32, 7);
        // One bank: every dual access conflicts. More banks: strictly
        // fewer (the workload is identical across runs).
        assert_eq!(one.conflicts(), one.dual_access_searches());
        assert!(eight.conflicts() < one.conflicts());
        assert!(thirty_two.conflicts() <= eight.conflicts());
        assert!(one.dual_access_searches() > 100, "workload too tame");
    }

    #[test]
    fn paper_choice_keeps_stage_near_four_cycles() {
        let m = conflict_stats(32, 99);
        assert!(
            m.mean_stage_cycles() < 4.1,
            "32 banks should stall <10% of searches: {}",
            m.mean_stage_cycles()
        );
    }

    #[test]
    fn accessors() {
        let geometry = Geometry::paper();
        let m = BankModel::new(geometry, 32);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(33), 1);
        assert_eq!(m.conflict_rate(), 0.0);
        assert_eq!(m.searches(), 0);
    }

    #[test]
    #[should_panic(expected = "banks must be")]
    fn zero_banks_rejected() {
        let _ = BankModel::new(Geometry::paper(), 0);
    }
}
