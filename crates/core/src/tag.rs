//! Tag and packet-reference value types.

use std::fmt;

/// A finishing tag: the time stamp a fair-queueing algorithm assigns to a
/// packet, indicating when it should be serviced relative to all others.
///
/// Tags are unsigned values of a configurable width (12 bits in the
/// fabricated circuit, up to 30 in this model); the width is owned by
/// [`Geometry`](crate::Geometry), which validates tags at the circuit
/// boundary.
///
/// # Example
///
/// ```
/// use tagsort::Tag;
/// let t = Tag(0b110110);
/// assert_eq!(t.value(), 54);
/// assert!(Tag(1) < Tag(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(pub u32);

impl Tag {
    /// The raw tag value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// The `bits`-wide literal at `level`, counting level 0 as the root.
    ///
    /// A 12-bit tag searched through 3 levels of 4-bit literals yields
    /// literals `[tag >> 8, (tag >> 4) & 0xf, tag & 0xf]`.
    pub fn literal(self, level: u32, bits: u32, levels: u32) -> u32 {
        debug_assert!(level < levels);
        let shift = (levels - 1 - level) * bits;
        (self.0 >> shift) & ((1 << bits) - 1)
    }
}

impl From<u32> for Tag {
    fn from(v: u32) -> Self {
        Tag(v)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag {}", self.0)
    }
}

impl fmt::Binary for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// A reference into the scheduler's shared packet buffer.
///
/// The sort/retrieve circuit never touches packet payloads; each link in
/// the tag storage memory carries one of these so the packet buffer read
/// control can fetch the right packet when its tag is served (Fig. 1).
///
/// # Generational handles
///
/// A reference packs a 24-bit slot index with an 8-bit *generation*
/// counter in the upper byte. The buffer bumps a slot's generation each
/// time the slot is released, so a held-over reference to a recycled
/// slot no longer silently aliases the new occupant: its stale
/// generation is detectable at the buffer boundary. The silicon's link
/// words store only the slot index (the generation is a bookkeeping
/// sideband of the buffer controller, not of the sort circuit), so
/// references recovered from the tag store carry generation 0 and the
/// scheduler re-attaches the live generation from its own slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PacketRef(pub u32);

/// Width of the slot-index field of a [`PacketRef`] in bits; the
/// generation counter lives in the bits above.
pub const PACKET_SLOT_BITS: u32 = 24;

impl PacketRef {
    /// Builds a reference from a slot index and a generation counter.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit [`PACKET_SLOT_BITS`].
    pub fn new(slot: u32, generation: u8) -> Self {
        assert!(
            slot < 1 << PACKET_SLOT_BITS,
            "packet slot {slot} exceeds the {PACKET_SLOT_BITS}-bit index space"
        );
        PacketRef((u32::from(generation) << PACKET_SLOT_BITS) | slot)
    }

    /// The buffer slot index (generation stripped).
    pub fn index(self) -> u32 {
        self.0 & ((1 << PACKET_SLOT_BITS) - 1)
    }

    /// The buffer slot index — alias of [`PacketRef::index`], named for
    /// call sites that contrast slot with generation.
    pub fn slot(self) -> u32 {
        self.index()
    }

    /// The generation counter the reference was issued under.
    pub fn generation(self) -> u8 {
        (self.0 >> PACKET_SLOT_BITS) as u8
    }
}

impl From<u32> for PacketRef {
    fn from(v: u32) -> Self {
        PacketRef(v)
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt #{}", self.index())?;
        if self.generation() != 0 {
            write!(f, ".g{}", self.generation())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_extraction_matches_paper_example() {
        // Paper Fig. 4: 6-bit value 110110 split into 2-bit literals.
        let t = Tag(0b110110);
        assert_eq!(t.literal(0, 2, 3), 0b11);
        assert_eq!(t.literal(1, 2, 3), 0b01);
        assert_eq!(t.literal(2, 2, 3), 0b10);
    }

    #[test]
    fn literal_extraction_12_bit_geometry() {
        let t = Tag(0xabc);
        assert_eq!(t.literal(0, 4, 3), 0xa);
        assert_eq!(t.literal(1, 4, 3), 0xb);
        assert_eq!(t.literal(2, 4, 3), 0xc);
    }

    #[test]
    fn tags_order_by_value() {
        let mut v = vec![Tag(5), Tag(1), Tag(3)];
        v.sort();
        assert_eq!(v, vec![Tag(1), Tag(3), Tag(5)]);
    }

    #[test]
    fn display_and_binary() {
        assert_eq!(Tag(54).to_string(), "tag 54");
        assert_eq!(format!("{:b}", Tag(54)), "110110");
        assert_eq!(PacketRef(3).to_string(), "pkt #3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Tag::from(9).value(), 9);
        assert_eq!(PacketRef::from(4).index(), 4);
    }

    #[test]
    fn generational_refs_pack_slot_and_generation() {
        let r = PacketRef::new(300, 7);
        assert_eq!(r.slot(), 300);
        assert_eq!(r.index(), 300);
        assert_eq!(r.generation(), 7);
        assert_eq!(r.to_string(), "pkt #300.g7");
        // Generation 0 is the bare-slot encoding the silicon stores.
        assert_eq!(PacketRef::new(300, 0), PacketRef(300));
        // Same slot, different generation: distinct handles.
        assert_ne!(PacketRef::new(300, 1), PacketRef::new(300, 2));
    }

    #[test]
    #[should_panic(expected = "exceeds the 24-bit index space")]
    fn oversized_slot_rejected() {
        let _ = PacketRef::new(1 << 24, 0);
    }
}
