//! Tag and packet-reference value types.

use std::fmt;

/// A finishing tag: the time stamp a fair-queueing algorithm assigns to a
/// packet, indicating when it should be serviced relative to all others.
///
/// Tags are unsigned values of a configurable width (12 bits in the
/// fabricated circuit, up to 30 in this model); the width is owned by
/// [`Geometry`](crate::Geometry), which validates tags at the circuit
/// boundary.
///
/// # Example
///
/// ```
/// use tagsort::Tag;
/// let t = Tag(0b110110);
/// assert_eq!(t.value(), 54);
/// assert!(Tag(1) < Tag(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(pub u32);

impl Tag {
    /// The raw tag value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// The `bits`-wide literal at `level`, counting level 0 as the root.
    ///
    /// A 12-bit tag searched through 3 levels of 4-bit literals yields
    /// literals `[tag >> 8, (tag >> 4) & 0xf, tag & 0xf]`.
    pub fn literal(self, level: u32, bits: u32, levels: u32) -> u32 {
        debug_assert!(level < levels);
        let shift = (levels - 1 - level) * bits;
        (self.0 >> shift) & ((1 << bits) - 1)
    }
}

impl From<u32> for Tag {
    fn from(v: u32) -> Self {
        Tag(v)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag {}", self.0)
    }
}

impl fmt::Binary for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// A reference into the scheduler's shared packet buffer.
///
/// The sort/retrieve circuit never touches packet payloads; each link in
/// the tag storage memory carries one of these so the packet buffer read
/// control can fetch the right packet when its tag is served (Fig. 1).
///
/// # Aliasing warning
///
/// A `PacketRef` is a raw slot index with no generation counter, exactly
/// like the pointer the silicon stores. Once the slot is released the
/// reference is *stale*: if the slot has been reused for a new packet, a
/// held-over `PacketRef` silently aliases the **new** occupant rather
/// than failing. Never retain one across a release of the same slot —
/// treat it as consumed by the release, as the hardware does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PacketRef(pub u32);

impl PacketRef {
    /// The raw buffer index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<u32> for PacketRef {
    fn from(v: u32) -> Self {
        PacketRef(v)
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt #{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_extraction_matches_paper_example() {
        // Paper Fig. 4: 6-bit value 110110 split into 2-bit literals.
        let t = Tag(0b110110);
        assert_eq!(t.literal(0, 2, 3), 0b11);
        assert_eq!(t.literal(1, 2, 3), 0b01);
        assert_eq!(t.literal(2, 2, 3), 0b10);
    }

    #[test]
    fn literal_extraction_12_bit_geometry() {
        let t = Tag(0xabc);
        assert_eq!(t.literal(0, 4, 3), 0xa);
        assert_eq!(t.literal(1, 4, 3), 0xb);
        assert_eq!(t.literal(2, 4, 3), 0xc);
    }

    #[test]
    fn tags_order_by_value() {
        let mut v = vec![Tag(5), Tag(1), Tag(3)];
        v.sort();
        assert_eq!(v, vec![Tag(1), Tag(3), Tag(5)]);
    }

    #[test]
    fn display_and_binary() {
        assert_eq!(Tag(54).to_string(), "tag 54");
        assert_eq!(format!("{:b}", Tag(54)), "110110");
        assert_eq!(PacketRef(3).to_string(), "pkt #3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Tag::from(9).value(), 9);
        assert_eq!(PacketRef::from(4).index(), 4);
    }
}
