//! Pluggable streaming event sinks.
//!
//! The per-shard rings keep only the *tail* of a run — fine for
//! post-mortems, useless for offline analysis of a long run. Attaching
//! an [`EventSink`] ([`crate::Tracer::set_sink`]) streams **every**
//! event out at emit time instead: the ring still keeps its tail for
//! snapshots, but nothing is lost (the eviction counter stays at zero
//! while a sink is attached).
//!
//! Three implementations ship here:
//!
//! * [`MemorySink`] — collects into a shared in-memory vector (tests,
//!   in-process analysis such as [`crate::EventJoiner`]).
//! * [`CallbackSink`] — adapts any `FnMut(&Event)` closure.
//! * [`FileSink`] — line-delimited JSON (one flat object per event) or
//!   the delta-encoded compact format ([`EventLogFormat`]), the formats
//!   `wfqsim --event-log` writes. I/O errors are deferred and surfaced
//!   by [`EventSink::flush`] so the hot emit path never propagates
//!   `Result`s.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use crate::trace::{Event, EventKind};

/// A streaming consumer of traced events.
///
/// [`record`](EventSink::record) is called once per event, at emit time,
/// in emit order (time-ordered per shard; across shards, the order is
/// the tracer's emit interleaving — deterministic for single-threaded
/// drivers). Implementations must be `Send`: the thread-per-shard
/// frontend emits from worker threads.
pub trait EventSink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output and reports any deferred I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects every event into a shared, growable in-memory buffer.
///
/// The sink is `Clone`; clones share one buffer, so a caller can keep a
/// clone, hand the other to [`crate::Tracer::set_sink`], and read the
/// events back without detaching the sink.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink lock").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("memory sink lock").push(*event);
    }
}

/// Adapts a closure into an [`EventSink`].
pub struct CallbackSink<F: FnMut(&Event) + Send>(pub F);

impl<F: FnMut(&Event) + Send> EventSink for CallbackSink<F> {
    fn record(&mut self, event: &Event) {
        (self.0)(event)
    }
}

impl<F: FnMut(&Event) + Send> std::fmt::Debug for CallbackSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CallbackSink")
    }
}

/// Formats one event as the flat JSON object [`FileSink`] writes per
/// line — stable field order, so identical runs produce byte-identical
/// logs.
pub fn event_to_json(e: &Event) -> String {
    format!(
        "{{\"shard\":{},\"cycle\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
        e.shard,
        e.cycle,
        e.kind.name(),
        e.a,
        e.b
    )
}

/// On-disk encoding of an event-log file.
///
/// The JSON format is self-describing NDJSON (~60 bytes/event); the
/// compact format delta-encodes per-shard cycle stamps into short
/// space-separated integer lines (typically under 15 bytes/event) and
/// round-trips exactly through [`parse_compact_event_log`]. Both are
/// byte-deterministic for identical event streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventLogFormat {
    /// One flat JSON object per line ([`event_to_json`]).
    #[default]
    Json,
    /// One `shard kind_code cycle_delta a b` integer line per event.
    Compact,
}

impl EventLogFormat {
    /// Stable lowercase name (the CLI flag value).
    pub fn name(&self) -> &'static str {
        match self {
            EventLogFormat::Json => "json",
            EventLogFormat::Compact => "compact",
        }
    }
}

impl fmt::Display for EventLogFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EventLogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "json" => Ok(EventLogFormat::Json),
            "compact" => Ok(EventLogFormat::Compact),
            other => Err(format!(
                "unknown event log format {other:?} (expected json or compact)"
            )),
        }
    }
}

/// Stateful encoder for [`EventLogFormat::Compact`] lines.
///
/// Each line is `shard kind_code cycle_delta a b` in decimal, where
/// `cycle_delta` is the cycle distance to the *previous encoded event of
/// the same shard* (the first event of a shard encodes its absolute
/// cycle). Per-shard cycle stamps are monotone, so deltas are small
/// non-negative integers — the point of the encoding.
#[derive(Debug, Clone, Default)]
pub struct CompactEncoder {
    last_cycle: Vec<u64>,
}

impl CompactEncoder {
    /// An encoder with no history (the state a decoder must mirror).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one event as a compact line (no trailing newline).
    pub fn encode(&mut self, e: &Event) -> String {
        let shard = e.shard as usize;
        if self.last_cycle.len() <= shard {
            self.last_cycle.resize(shard + 1, 0);
        }
        let delta = e.cycle.wrapping_sub(self.last_cycle[shard]);
        self.last_cycle[shard] = e.cycle;
        format!("{} {} {} {} {}", e.shard, e.kind.code(), delta, e.a, e.b)
    }
}

/// Decodes a whole [`EventLogFormat::Compact`] log back into events —
/// the inverse of streaming through [`CompactEncoder`].
///
/// # Errors
///
/// Returns a description of the first malformed line (wrong field count,
/// non-integer field, or unknown kind code).
pub fn parse_compact_event_log(text: &str) -> Result<Vec<Event>, String> {
    let mut last_cycle: Vec<u64> = Vec::new();
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() != 5 {
            return Err(format!(
                "line {}: expected 5 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let int = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: bad {what} {s:?}", lineno + 1))
        };
        let shard = int(fields[0], "shard")?;
        let code = int(fields[1], "kind code")?;
        let delta = int(fields[2], "cycle delta")?;
        let a = int(fields[3], "argument")?;
        let b = int(fields[4], "argument")?;
        let kind = u8::try_from(code)
            .ok()
            .and_then(EventKind::from_code)
            .ok_or_else(|| format!("line {}: unknown kind code {code}", lineno + 1))?;
        let shard_idx = shard as usize;
        if last_cycle.len() <= shard_idx {
            last_cycle.resize(shard_idx + 1, 0);
        }
        let cycle = last_cycle[shard_idx].wrapping_add(delta);
        last_cycle[shard_idx] = cycle;
        events.push(Event {
            shard: shard as u32,
            cycle,
            kind,
            a,
            b,
        });
    }
    Ok(events)
}

/// Streams events to a file as line-delimited JSON (see
/// [`event_to_json`] for the per-line shape) or as compact
/// delta-encoded lines ([`EventLogFormat::Compact`]).
///
/// Writes are buffered; the first I/O error stops further writing and is
/// reported by [`EventSink::flush`] (call it before dropping — the
/// implicit flush on drop swallows errors, as `BufWriter`'s must).
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
    format: EventLogFormat,
    encoder: CompactEncoder,
    error: Option<io::Error>,
    written: u64,
}

impl FileSink {
    /// Creates (truncating) `path` and returns a JSON-format sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::create_with_format(path, EventLogFormat::Json)
    }

    /// Creates (truncating) `path` with an explicit line format.
    pub fn create_with_format(path: impl AsRef<Path>, format: EventLogFormat) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            format,
            encoder: CompactEncoder::new(),
            error: None,
            written: 0,
        })
    }

    /// Number of events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl EventSink for FileSink {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = match self.format {
            EventLogFormat::Json => event_to_json(event),
            EventLogFormat::Compact => self.encoder.encode(event),
        };
        match writeln!(self.out, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    fn ev(shard: u32, cycle: u64) -> Event {
        Event {
            shard,
            cycle,
            kind: EventKind::Enqueue,
            a: 7,
            b: 9,
        }
    }

    #[test]
    fn memory_sink_shares_its_buffer_across_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.record(&ev(0, 1));
        writer.record(&ev(1, 2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[1].cycle, 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn callback_sink_invokes_the_closure() {
        let mut cycles = Vec::new();
        {
            let mut sink = CallbackSink(|e: &Event| cycles.push(e.cycle));
            sink.record(&ev(0, 5));
            sink.record(&ev(0, 6));
            sink.flush().unwrap();
        }
        assert_eq!(cycles, vec![5, 6]);
    }

    #[test]
    fn event_json_has_stable_field_order() {
        assert_eq!(
            event_to_json(&ev(3, 42)),
            "{\"shard\":3,\"cycle\":42,\"kind\":\"enqueue\",\"a\":7,\"b\":9}"
        );
    }

    #[test]
    fn file_sink_writes_one_json_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("telemetry_sink_test_{}.ndjson", std::process::id()));
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.record(&ev(0, 1));
            sink.record(&ev(1, 2));
            assert_eq!(sink.written(), 2);
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], event_to_json(&ev(0, 1)));
        assert_eq!(lines[1], event_to_json(&ev(1, 2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_log_format_parses_and_rejects() {
        assert_eq!(
            "json".parse::<EventLogFormat>().unwrap(),
            EventLogFormat::Json
        );
        assert_eq!(
            "compact".parse::<EventLogFormat>().unwrap(),
            EventLogFormat::Compact
        );
        let err = "yaml".parse::<EventLogFormat>().unwrap_err();
        assert!(err.contains("expected json or compact"), "{err}");
        assert_eq!(EventLogFormat::Compact.to_string(), "compact");
    }

    #[test]
    fn compact_lines_delta_encode_per_shard_cycles() {
        let mut enc = CompactEncoder::new();
        // First event of each shard carries its absolute cycle; later
        // events carry the distance to the previous event of that shard.
        assert_eq!(enc.encode(&ev(0, 100)), "0 0 100 7 9");
        assert_eq!(enc.encode(&ev(1, 250)), "1 0 250 7 9");
        assert_eq!(enc.encode(&ev(0, 103)), "0 0 3 7 9");
        assert_eq!(enc.encode(&ev(1, 251)), "1 0 1 7 9");
    }

    #[test]
    fn compact_log_round_trips_exactly() {
        let events = vec![
            Event {
                shard: 0,
                cycle: 12,
                kind: EventKind::Enqueue,
                a: 5,
                b: 17,
            },
            Event {
                shard: 2,
                cycle: 40,
                kind: EventKind::FaultInject,
                a: u64::MAX,
                b: 3,
            },
            Event {
                shard: 0,
                cycle: 12,
                kind: EventKind::Dequeue,
                a: 5,
                b: 0,
            },
            Event {
                shard: 2,
                cycle: 77,
                kind: EventKind::Repair,
                a: 9,
                b: 256,
            },
        ];
        let mut enc = CompactEncoder::new();
        let text: String = events.iter().map(|e| enc.encode(e) + "\n").collect();
        let decoded = parse_compact_event_log(&text).unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn compact_parser_reports_malformed_lines() {
        let err = parse_compact_event_log("1 2 3\n").unwrap_err();
        assert!(err.contains("line 1: expected 5 fields"), "{err}");
        let err = parse_compact_event_log("0 0 x 0 0\n").unwrap_err();
        assert!(err.contains("bad cycle delta"), "{err}");
        let err = parse_compact_event_log("0 99 0 0 0\n").unwrap_err();
        assert!(err.contains("unknown kind code 99"), "{err}");
    }

    #[test]
    fn file_sink_honors_the_compact_format() {
        let path = std::env::temp_dir().join(format!(
            "telemetry_sink_compact_test_{}.log",
            std::process::id()
        ));
        {
            let mut sink = FileSink::create_with_format(&path, EventLogFormat::Compact).unwrap();
            sink.record(&ev(0, 10));
            sink.record(&ev(0, 12));
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "0 0 10 7 9\n0 0 2 7 9\n");
        let decoded = parse_compact_event_log(&text).unwrap();
        assert_eq!(decoded, vec![ev(0, 10), ev(0, 12)]);
        std::fs::remove_file(&path).ok();
    }
}
