//! Pluggable streaming event sinks.
//!
//! The per-shard rings keep only the *tail* of a run — fine for
//! post-mortems, useless for offline analysis of a long run. Attaching
//! an [`EventSink`] ([`crate::Tracer::set_sink`]) streams **every**
//! event out at emit time instead: the ring still keeps its tail for
//! snapshots, but nothing is lost (the eviction counter stays at zero
//! while a sink is attached).
//!
//! Three implementations ship here:
//!
//! * [`MemorySink`] — collects into a shared in-memory vector (tests,
//!   in-process analysis such as [`crate::EventJoiner`]).
//! * [`CallbackSink`] — adapts any `FnMut(&Event)` closure.
//! * [`FileSink`] — line-delimited JSON (one flat object per event), the
//!   format `wfqsim --event-log` writes. I/O errors are deferred and
//!   surfaced by [`EventSink::flush`] so the hot emit path never
//!   propagates `Result`s.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::trace::Event;

/// A streaming consumer of traced events.
///
/// [`record`](EventSink::record) is called once per event, at emit time,
/// in emit order (time-ordered per shard; across shards, the order is
/// the tracer's emit interleaving — deterministic for single-threaded
/// drivers). Implementations must be `Send`: the thread-per-shard
/// frontend emits from worker threads.
pub trait EventSink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output and reports any deferred I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects every event into a shared, growable in-memory buffer.
///
/// The sink is `Clone`; clones share one buffer, so a caller can keep a
/// clone, hand the other to [`crate::Tracer::set_sink`], and read the
/// events back without detaching the sink.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink lock").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("memory sink lock").push(*event);
    }
}

/// Adapts a closure into an [`EventSink`].
pub struct CallbackSink<F: FnMut(&Event) + Send>(pub F);

impl<F: FnMut(&Event) + Send> EventSink for CallbackSink<F> {
    fn record(&mut self, event: &Event) {
        (self.0)(event)
    }
}

impl<F: FnMut(&Event) + Send> std::fmt::Debug for CallbackSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CallbackSink")
    }
}

/// Formats one event as the flat JSON object [`FileSink`] writes per
/// line — stable field order, so identical runs produce byte-identical
/// logs.
pub fn event_to_json(e: &Event) -> String {
    format!(
        "{{\"shard\":{},\"cycle\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
        e.shard,
        e.cycle,
        e.kind.name(),
        e.a,
        e.b
    )
}

/// Streams events to a file as line-delimited JSON (see
/// [`event_to_json`] for the per-line shape).
///
/// Writes are buffered; the first I/O error stops further writing and is
/// reported by [`EventSink::flush`] (call it before dropping — the
/// implicit flush on drop swallows errors, as `BufWriter`'s must).
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
    error: Option<io::Error>,
    written: u64,
}

impl FileSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            error: None,
            written: 0,
        })
    }

    /// Number of events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl EventSink for FileSink {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", event_to_json(event)) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    fn ev(shard: u32, cycle: u64) -> Event {
        Event {
            shard,
            cycle,
            kind: EventKind::Enqueue,
            a: 7,
            b: 9,
        }
    }

    #[test]
    fn memory_sink_shares_its_buffer_across_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.record(&ev(0, 1));
        writer.record(&ev(1, 2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[1].cycle, 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn callback_sink_invokes_the_closure() {
        let mut cycles = Vec::new();
        {
            let mut sink = CallbackSink(|e: &Event| cycles.push(e.cycle));
            sink.record(&ev(0, 5));
            sink.record(&ev(0, 6));
            sink.flush().unwrap();
        }
        assert_eq!(cycles, vec![5, 6]);
    }

    #[test]
    fn event_json_has_stable_field_order() {
        assert_eq!(
            event_to_json(&ev(3, 42)),
            "{\"shard\":3,\"cycle\":42,\"kind\":\"enqueue\",\"a\":7,\"b\":9}"
        );
    }

    #[test]
    fn file_sink_writes_one_json_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("telemetry_sink_test_{}.ndjson", std::process::id()));
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.record(&ev(0, 1));
            sink.record(&ev(1, 2));
            assert_eq!(sink.written(), 2);
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], event_to_json(&ev(0, 1)));
        assert_eq!(lines[1], event_to_json(&ev(1, 2)));
        std::fs::remove_file(&path).ok();
    }
}
