//! Per-flow latency attribution.
//!
//! Counters say *how many* packets moved; this module says **where each
//! packet's time went**. A [`LatencyTracker`] accumulates per-flow
//! sojourn histograms in two time domains:
//!
//! * **circuit cycles** — the sort/retrieve circuit's own clock, the
//!   figure of merit the paper's architecture bounds (`flow{N}_sojourn`);
//! * **simulated wall-clock nanoseconds** — split into buffer residency
//!   (arrival → service start, `flow{N}_wait_ns`) and
//!   retrieve-to-departure (service start → departure finish,
//!   `flow{N}_service_ns`), plus their sum (`flow{N}_sojourn_ns`).
//!
//! Two ways to feed it:
//!
//! * **Directly** — the link simulations call [`LatencyTracker::record`]
//!   at each departure with the cycle stamps and simulated times in
//!   hand (global flow ids, both time domains).
//! * **From the event stream** — an [`EventJoiner`] (itself an
//!   [`EventSink`]) joins `Enqueue`/`Dequeue` event pairs by
//!   `(shard, flow, seq)` into cycle-domain sojourns, for analyses that
//!   only have a trace. Events carry shard-*local* flow ids in a
//!   sharded frontend, so joined attribution is per-shard there.
//!
//! Exported through the deterministic [`Snapshot`] contract: each
//! histogram flattens to `_count/_mean/_p50/_p90/_p99/_max` keys, so a
//! report exposes `flow{N}_sojourn_{p50,p99,max}` et al. with
//! byte-stable JSON for CI gating.

use std::collections::{BTreeMap, HashMap};

use crate::histogram::{bucket_of, BUCKETS};
use crate::sink::EventSink;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::trace::{Event, EventKind};

/// Plain (non-atomic) accumulator over the shared log-bucket geometry.
#[derive(Debug, Clone)]
struct Acc {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Acc {
    fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    fn snapshot(&self, name: String) -> HistogramSnapshot {
        HistogramSnapshot::from_buckets(name, self.buckets.clone(), self.sum, self.max)
    }
}

/// One flow's attribution histograms.
#[derive(Debug, Clone)]
struct FlowAcc {
    sojourn_cycles: Acc,
    wait_ns: Acc,
    service_ns: Acc,
    sojourn_ns: Acc,
}

impl FlowAcc {
    fn new() -> Self {
        Self {
            sojourn_cycles: Acc::new(),
            wait_ns: Acc::new(),
            service_ns: Acc::new(),
            sojourn_ns: Acc::new(),
        }
    }
}

/// Converts non-negative simulated seconds to whole nanoseconds.
fn secs_to_ns(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * 1e9).round() as u64
    }
}

/// Per-flow sojourn histograms; see the module docs for the key schema.
///
/// Flows are kept in a `BTreeMap`, so iteration (and therefore
/// [`LatencyTracker::export`]) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    flows: BTreeMap<u32, FlowAcc>,
}

impl LatencyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served packet with full attribution: sojourn in
    /// circuit cycles plus the simulated wall-clock split — `wait_s`
    /// (arrival → service start, i.e. buffer residency) and `service_s`
    /// (service start → departure finish). Negative components clamp to
    /// zero; the wall-clock total is the sum of the two rounded parts,
    /// so `wait_ns + service_ns == sojourn_ns` holds exactly.
    pub fn record(&mut self, flow: u32, sojourn_cycles: u64, wait_s: f64, service_s: f64) {
        let wait_ns = secs_to_ns(wait_s);
        let service_ns = secs_to_ns(service_s);
        let acc = self.flows.entry(flow).or_insert_with(FlowAcc::new);
        acc.sojourn_cycles.observe(sojourn_cycles);
        acc.wait_ns.observe(wait_ns);
        acc.service_ns.observe(service_ns);
        acc.sojourn_ns.observe(wait_ns.saturating_add(service_ns));
    }

    /// Records a cycle-domain-only sample (the event joiner's path — an
    /// event trace carries no wall-clock view).
    pub fn record_cycles(&mut self, flow: u32, sojourn_cycles: u64) {
        self.flows
            .entry(flow)
            .or_insert_with(FlowAcc::new)
            .sojourn_cycles
            .observe(sojourn_cycles);
    }

    /// Number of flows with at least one sample.
    pub fn flows(&self) -> usize {
        self.flows.len()
    }

    /// Total number of recorded samples (cycle-domain count).
    pub fn samples(&self) -> u64 {
        self.flows.values().map(|a| a.sojourn_cycles.count).sum()
    }

    /// The cycle-domain sojourn histogram of one flow, if it has
    /// samples (named `flow{N}_sojourn`, as exported).
    pub fn flow_sojourn(&self, flow: u32) -> Option<HistogramSnapshot> {
        self.flows
            .get(&flow)
            .map(|a| a.sojourn_cycles.snapshot(format!("flow{flow}_sojourn")))
    }

    /// Exports every flow's histograms into the snapshot —
    /// `flow{N}_sojourn` (cycles) always, the wall-clock triple
    /// (`_wait_ns`/`_service_ns`/`_sojourn_ns`) when wall-clock samples
    /// exist — plus `latency_flows` / `latency_samples` totals.
    pub fn export(&self, snap: &mut Snapshot) {
        for (flow, acc) in &self.flows {
            snap.add_histogram(acc.sojourn_cycles.snapshot(format!("flow{flow}_sojourn")));
            if acc.wait_ns.count > 0 {
                snap.add_histogram(acc.wait_ns.snapshot(format!("flow{flow}_wait_ns")));
                snap.add_histogram(acc.service_ns.snapshot(format!("flow{flow}_service_ns")));
                snap.add_histogram(acc.sojourn_ns.snapshot(format!("flow{flow}_sojourn_ns")));
            }
        }
        snap.put("latency_flows", self.flows.len() as f64);
        snap.put("latency_samples", self.samples() as f64);
    }
}

/// Joins `Enqueue`/`Dequeue` event pairs by `(shard, flow, seq)` into a
/// cycle-domain [`LatencyTracker`].
///
/// Usable standalone (feed it with [`EventJoiner::observe`], e.g. over
/// `Snapshot::events` or `Tracer::drain` output) or attached as a
/// streaming [`EventSink`]. Dequeues whose matching enqueue was never
/// seen (e.g. a trace that starts mid-run, or a ring that evicted the
/// enqueue before a drain) are counted as [`EventJoiner::unmatched`],
/// not guessed at.
#[derive(Debug, Clone, Default)]
pub struct EventJoiner {
    pending: HashMap<(u32, u64, u64), u64>,
    tracker: LatencyTracker,
    unmatched: u64,
}

impl EventJoiner {
    /// An empty joiner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event; kinds other than `Enqueue`/`Dequeue` are
    /// ignored.
    pub fn observe(&mut self, e: &Event) {
        match e.kind {
            EventKind::Enqueue => {
                self.pending.insert((e.shard, e.a, e.b), e.cycle);
            }
            EventKind::Dequeue => match self.pending.remove(&(e.shard, e.a, e.b)) {
                Some(enqueued) => self
                    .tracker
                    .record_cycles(e.a as u32, e.cycle.saturating_sub(enqueued)),
                None => self.unmatched += 1,
            },
            _ => {}
        }
    }

    /// The accumulated tracker (borrow; see [`EventJoiner::into_tracker`]).
    pub fn tracker(&self) -> &LatencyTracker {
        &self.tracker
    }

    /// Consumes the joiner, yielding the accumulated tracker.
    pub fn into_tracker(self) -> LatencyTracker {
        self.tracker
    }

    /// Dequeues seen without a matching enqueue.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Enqueues still waiting for their dequeue (packets in flight when
    /// the stream ended).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

impl EventSink for EventJoiner {
    fn record(&mut self, event: &Event) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(shard: u32, cycle: u64, kind: EventKind, flow: u64, seq: u64) -> Event {
        Event {
            shard,
            cycle,
            kind,
            a: flow,
            b: seq,
        }
    }

    #[test]
    fn joiner_pairs_enqueue_dequeue_by_flow_and_seq() {
        let mut j = EventJoiner::new();
        j.observe(&ev(0, 10, EventKind::Enqueue, 1, 0));
        j.observe(&ev(0, 14, EventKind::Enqueue, 2, 0));
        j.observe(&ev(0, 20, EventKind::Dequeue, 1, 0));
        j.observe(&ev(0, 30, EventKind::Dequeue, 2, 0));
        // Unrelated kinds are ignored; unknown dequeues are counted.
        j.observe(&ev(0, 31, EventKind::VclockWrap, 0, 0));
        j.observe(&ev(0, 40, EventKind::Dequeue, 9, 9));
        assert_eq!(j.unmatched(), 1);
        assert_eq!(j.in_flight(), 0);
        let t = j.into_tracker();
        assert_eq!(t.flows(), 2);
        assert_eq!(t.flow_sojourn(1).unwrap().max, 10);
        assert_eq!(t.flow_sojourn(2).unwrap().max, 16);
    }

    #[test]
    fn joiner_keys_include_the_shard() {
        // Shard-local flow ids collide across shards; the (shard, flow,
        // seq) key must keep the pairs apart.
        let mut j = EventJoiner::new();
        j.observe(&ev(0, 10, EventKind::Enqueue, 1, 0));
        j.observe(&ev(1, 100, EventKind::Enqueue, 1, 0));
        j.observe(&ev(1, 104, EventKind::Dequeue, 1, 0));
        j.observe(&ev(0, 12, EventKind::Dequeue, 1, 0));
        let t = j.tracker();
        let h = t.flow_sojourn(1).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 4, "cross-shard join would have yielded 94");
    }

    #[test]
    fn export_emits_per_flow_keys_through_the_snapshot_contract() {
        let mut t = LatencyTracker::new();
        t.record(3, 8, 2e-6, 1e-6);
        t.record(3, 12, 4e-6, 1e-6);
        t.record_cycles(7, 5);
        let mut snap = Snapshot::empty(1);
        t.export(&mut snap);
        assert_eq!(snap.value("flow3_sojourn_p50"), Some(8.0));
        assert_eq!(snap.value("flow3_sojourn_max"), Some(12.0));
        assert_eq!(
            snap.value("flow3_wait_ns_max"),
            Some(4000.0),
            "max is exact, 4 µs"
        );
        assert_eq!(snap.value("flow3_sojourn_ns_count"), Some(2.0));
        assert_eq!(snap.value("flow7_sojourn_p99"), Some(5.0));
        assert_eq!(
            snap.value("flow7_wait_ns_count"),
            None,
            "cycle-only flows export no wall-clock histograms"
        );
        assert_eq!(snap.value("latency_flows"), Some(2.0));
        assert_eq!(snap.value("latency_samples"), Some(3.0));
    }

    #[test]
    fn wall_clock_split_sums_exactly() {
        let mut t = LatencyTracker::new();
        // Rounding each part separately, the total is their exact sum.
        t.record(0, 1, 1.4e-9, 1.4e-9);
        let mut snap = Snapshot::empty(1);
        t.export(&mut snap);
        let wait = snap.value("flow0_wait_ns_max").unwrap();
        let service = snap.value("flow0_service_ns_max").unwrap();
        let total = snap.value("flow0_sojourn_ns_max").unwrap();
        assert_eq!(wait + service, total);
        // Negative (clock-skew) components clamp to zero.
        t.record(0, 1, -1.0, 0.5);
        assert_eq!(t.samples(), 2);
    }
}
