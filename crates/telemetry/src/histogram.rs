//! Log-bucketed histogram geometry.
//!
//! Values 0..=16 get one exact bucket each, so the small integer
//! latencies the cycle-accurate model produces (the paper's fixed
//! four-cycle slot, small queue depths) report exact quantiles; larger
//! values fall into power-of-two buckets whose quantiles are reported as
//! the bucket's inclusive upper bound. Both regimes are deterministic:
//! identical observations always produce identical quantiles.

/// Largest value with its own exact bucket.
const EXACT: u64 = 16;

/// Number of buckets: 17 exact (0..=16) plus one per power of two from
/// 2^4..2^5 up to 2^63.. (the top bucket is unbounded).
pub const BUCKETS: usize = 17 + 60;

/// The bucket a value falls into.
pub fn bucket_of(v: u64) -> usize {
    if v <= EXACT {
        v as usize
    } else {
        // v >= 17 ⇒ floor(log2 v) in 4..=63; log2 17..=31 is 4, sharing
        // the first log bucket with the tail of the exact range.
        17 + (63 - v.leading_zeros() as usize) - 4
    }
}

/// The largest value a bucket holds (inclusive); quantiles report this
/// bound. The top bucket saturates at `u64::MAX`.
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket <= EXACT as usize {
        bucket as u64
    } else {
        let log2 = bucket - 17 + 4;
        if log2 >= 63 {
            u64::MAX
        } else {
            (1u64 << (log2 + 1)) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_are_exact() {
        for v in 0..=16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper_bound(bucket_of(v)), v);
        }
    }

    #[test]
    fn log_buckets_cover_all_of_u64() {
        assert_eq!(bucket_of(17), 17);
        assert_eq!(bucket_of(31), 17);
        assert_eq!(bucket_upper_bound(17), 31);
        assert_eq!(bucket_of(32), 18);
        assert_eq!(bucket_upper_bound(18), 63);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every value lands in a bucket whose bound covers it.
        for shift in 0..64 {
            let v = 1u64 << shift;
            assert!(bucket_of(v) < BUCKETS);
            assert!(bucket_upper_bound(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for v in [0, 1, 5, 16, 17, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of({v}) went backwards");
            prev = b;
        }
    }
}
