//! The metrics registry: named counters, gauges, and histograms with
//! per-shard lock-free accumulators.
//!
//! Registration (naming a metric) takes a short-lived mutex and happens
//! at scheduler construction; **recording never locks**. Every metric
//! owns one cache-line-padded atomic cell per shard, and the contract is
//! that shard `i`'s cells are written only from the thread driving shard
//! `i` (plus the snapshotting thread, which only reads), so relaxed
//! atomics are both correct and contention-free. Snapshots merge across
//! shards: counters and `Sum` gauges add, `Max` gauges take the maximum,
//! histogram buckets add.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_of, BUCKETS};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::trace::Tracer;

/// One shard's accumulator, padded to a cache line so adjacent shards'
/// cells never share one (false sharing would serialize the workers the
/// registry exists to keep independent).
#[derive(Default)]
#[repr(align(64))]
struct Cell(AtomicU64);

fn cells(shards: usize) -> Box<[Cell]> {
    (0..shards).map(|_| Cell::default()).collect()
}

/// A named monotone counter; increments are per-shard and lock-free.
///
/// A counter obtained from [`Telemetry::disabled`] carries no storage:
/// [`Counter::inc`] is one branch and a return.
#[derive(Clone)]
pub struct Counter {
    cells: Option<Arc<Box<[Cell]>>>,
}

impl Counter {
    /// A no-op counter (what disabled telemetry hands out).
    pub fn disabled() -> Self {
        Self { cells: None }
    }

    /// Adds `n` on `shard`'s accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled telemetry only).
    #[inline]
    pub fn inc(&self, shard: usize, n: u64) {
        if let Some(cells) = &self.cells {
            cells[shard].0.fetch_add(n, Relaxed);
        }
    }

    /// The merged total across shards (0 when disabled).
    pub fn total(&self) -> u64 {
        self.cells
            .as_ref()
            .map(|c| c.iter().map(|cell| cell.0.load(Relaxed)).sum())
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter(total={})", self.total())
    }
}

/// How a gauge's per-shard values merge into one number at snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeMerge {
    /// Shards add (e.g. total queue depth across ports).
    Sum,
    /// Shards take the maximum (e.g. the worst per-port peak).
    Max,
}

/// A named instantaneous value; per-shard and lock-free.
#[derive(Clone)]
pub struct Gauge {
    cells: Option<Arc<Box<[Cell]>>>,
}

impl Gauge {
    /// A no-op gauge (what disabled telemetry hands out).
    pub fn disabled() -> Self {
        Self { cells: None }
    }

    /// Sets `shard`'s value.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled telemetry only).
    #[inline]
    pub fn set(&self, shard: usize, v: u64) {
        if let Some(cells) = &self.cells {
            cells[shard].0.store(v, Relaxed);
        }
    }

    /// Raises `shard`'s value to `v` if larger (a high-water mark).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled telemetry only).
    #[inline]
    pub fn record_max(&self, shard: usize, v: u64) {
        if let Some(cells) = &self.cells {
            cells[shard].0.fetch_max(v, Relaxed);
        }
    }

    /// One shard's current value (0 when disabled).
    pub fn get(&self, shard: usize) -> u64 {
        self.cells
            .as_ref()
            .map(|c| c[shard].0.load(Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge(enabled={})", self.cells.is_some())
    }
}

/// One shard's histogram storage: log-2 buckets (see
/// [`crate::histogram`]) plus sum and max, all relaxed atomics.
struct ShardHist {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl ShardHist {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A named log-bucketed histogram of latencies or occupancies;
/// observations are per-shard and lock-free.
#[derive(Clone)]
pub struct Histogram {
    shards: Option<Arc<Box<[ShardHist]>>>,
}

impl Histogram {
    /// A no-op histogram (what disabled telemetry hands out).
    pub fn disabled() -> Self {
        Self { shards: None }
    }

    /// Records one observation on `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled telemetry only).
    #[inline]
    pub fn observe(&self, shard: usize, v: u64) {
        if let Some(shards) = &self.shards {
            let h = &shards[shard];
            h.buckets[bucket_of(v)].fetch_add(1, Relaxed);
            h.sum.fetch_add(v, Relaxed);
            h.max.fetch_max(v, Relaxed);
        }
    }

    /// Merges all shards into a snapshot (empty when disabled).
    pub fn merged(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        if let Some(shards) = &self.shards {
            for h in shards.iter() {
                for (agg, b) in buckets.iter_mut().zip(h.buckets.iter()) {
                    *agg += b.load(Relaxed);
                }
                sum += h.sum.load(Relaxed);
                max = max.max(h.max.load(Relaxed));
            }
        }
        HistogramSnapshot::from_buckets(String::new(), buckets, sum, max)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(enabled={})", self.shards.is_some())
    }
}

/// The registered metrics, behind the registration mutex.
#[derive(Default)]
struct Metrics {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, GaugeMerge, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

struct Shared {
    shards: usize,
    metrics: Mutex<Metrics>,
    tracer: Tracer,
}

/// The registry handle: cheap to clone, safe to share across threads.
///
/// [`Telemetry::disabled`] is the zero-cost mode: every handle it
/// returns is a no-op and [`Telemetry::snapshot`] is empty. Enabled
/// registries are created with a fixed shard count; single-scheduler
/// users are simply shard 0 of 1.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

impl Telemetry {
    /// Disabled telemetry: all handles are no-ops, no storage exists.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Enabled metrics for `shards` shards, event tracing off.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_tracing(shards, 0)
    }

    /// Enabled metrics plus an event ring of `events_per_shard`
    /// capacity on every shard (0 leaves tracing disabled).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_tracing(shards: usize, events_per_shard: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        Self {
            inner: Some(Arc::new(Shared {
                shards,
                metrics: Mutex::new(Metrics::default()),
                tracer: Tracer::new(shards, events_per_shard),
            })),
        }
    }

    /// Whether metrics are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of shards (0 when disabled).
    pub fn shards(&self) -> usize {
        self.inner.as_ref().map(|i| i.shards).unwrap_or(0)
    }

    /// The event tracer handle (disabled when telemetry is disabled or
    /// was created without tracing capacity).
    pub fn tracer(&self) -> Tracer {
        self.inner
            .as_ref()
            .map(|i| i.tracer.clone())
            .unwrap_or_else(Tracer::disabled)
    }

    /// Registers (or retrieves) the counter `name`.
    ///
    /// Registering an existing name returns a handle to the same
    /// storage, so independently-constructed shards share one metric.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a `[a-z0-9_]` slug (snapshot keys must be
    /// JSON-safe and shell-safe).
    pub fn counter(&self, name: &str) -> Counter {
        let Some(shared) = &self.inner else {
            return Counter::disabled();
        };
        check_slug(name);
        let mut m = shared.metrics.lock().expect("registry lock");
        if let Some((_, c)) = m.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter {
            cells: Some(Arc::new(cells(shared.shards))),
        };
        m.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Registers (or retrieves) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a slug, or if it was already registered
    /// with a different merge rule.
    pub fn gauge(&self, name: &str, merge: GaugeMerge) -> Gauge {
        let Some(shared) = &self.inner else {
            return Gauge::disabled();
        };
        check_slug(name);
        let mut m = shared.metrics.lock().expect("registry lock");
        if let Some((_, existing_merge, g)) = m.gauges.iter().find(|(n, _, _)| n == name) {
            assert_eq!(
                *existing_merge, merge,
                "gauge {name} re-registered with a different merge rule"
            );
            return g.clone();
        }
        let g = Gauge {
            cells: Some(Arc::new(cells(shared.shards))),
        };
        m.gauges.push((name.to_string(), merge, g.clone()));
        g
    }

    /// Registers (or retrieves) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a slug.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(shared) = &self.inner else {
            return Histogram::disabled();
        };
        check_slug(name);
        let mut m = shared.metrics.lock().expect("registry lock");
        if let Some((_, h)) = m.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram {
            shards: Some(Arc::new(
                (0..shared.shards).map(|_| ShardHist::new()).collect(),
            )),
        };
        m.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Merges every registered metric (and any traced events) into a
    /// deterministic [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let Some(shared) = &self.inner else {
            return Snapshot::empty(0);
        };
        let m = shared.metrics.lock().expect("registry lock");
        let mut snap = Snapshot::empty(shared.shards);
        for (name, c) in &m.counters {
            let cells = c.cells.as_ref().expect("registered counter has cells");
            let per_shard: Vec<u64> = cells.iter().map(|cell| cell.0.load(Relaxed)).collect();
            snap.add_counter(name.clone(), per_shard);
        }
        for (name, merge, g) in &m.gauges {
            let cells = g.cells.as_ref().expect("registered gauge has cells");
            let per_shard: Vec<u64> = cells.iter().map(|cell| cell.0.load(Relaxed)).collect();
            snap.add_gauge(name.clone(), *merge, per_shard);
        }
        for (name, h) in &m.histograms {
            let mut merged = h.merged();
            merged.name = name.clone();
            snap.add_histogram(merged);
        }
        shared.tracer.collect_into(&mut snap);
        snap
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry(enabled={}, shards={})",
            self.is_enabled(),
            self.shards()
        )
    }
}

fn check_slug(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric name {name:?} must be a [a-z0-9_] slug"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("x");
        c.inc(0, 5);
        assert_eq!(c.total(), 0);
        let g = tel.gauge("y", GaugeMerge::Sum);
        g.set(0, 7);
        assert_eq!(g.get(0), 0);
        let h = tel.histogram("z");
        h.observe(0, 9);
        assert_eq!(h.merged().count, 0);
        assert!(!tel.tracer().is_enabled());
        assert!(tel.snapshot().to_json().starts_with('{'));
    }

    #[test]
    fn counters_merge_across_shards() {
        let tel = Telemetry::new(3);
        let c = tel.counter("served");
        c.inc(0, 1);
        c.inc(1, 2);
        c.inc(2, 3);
        assert_eq!(c.total(), 6);
        let snap = tel.snapshot();
        assert_eq!(snap.value("served_total"), Some(6.0));
        assert_eq!(snap.value("served_port1"), Some(2.0));
    }

    #[test]
    fn same_name_shares_storage() {
        let tel = Telemetry::new(2);
        let a = tel.counter("shared");
        let b = tel.counter("shared");
        a.inc(0, 1);
        b.inc(1, 1);
        assert_eq!(a.total(), 2);
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn gauge_merge_rules() {
        let tel = Telemetry::new(2);
        let depth = tel.gauge("depth", GaugeMerge::Sum);
        let peak = tel.gauge("peak", GaugeMerge::Max);
        depth.set(0, 3);
        depth.set(1, 4);
        peak.record_max(0, 10);
        peak.record_max(0, 7); // lower: ignored
        peak.record_max(1, 9);
        let snap = tel.snapshot();
        assert_eq!(snap.value("depth"), Some(7.0));
        assert_eq!(snap.value("peak"), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "different merge rule")]
    fn gauge_merge_conflict_panics() {
        let tel = Telemetry::new(1);
        let _ = tel.gauge("g", GaugeMerge::Sum);
        let _ = tel.gauge("g", GaugeMerge::Max);
    }

    #[test]
    fn histogram_quantiles_are_exact_for_small_values() {
        let tel = Telemetry::new(2);
        let h = tel.histogram("cycles");
        for _ in 0..99 {
            h.observe(0, 4);
        }
        h.observe(1, 12);
        let snap = tel.snapshot();
        assert_eq!(snap.value("cycles_count"), Some(100.0));
        assert_eq!(snap.value("cycles_p50"), Some(4.0));
        assert_eq!(snap.value("cycles_p99"), Some(4.0));
        assert_eq!(snap.value("cycles_max"), Some(12.0));
    }

    #[test]
    #[should_panic(expected = "slug")]
    fn non_slug_names_are_rejected() {
        let tel = Telemetry::new(1);
        let _ = tel.counter("Bad Name");
    }

    #[test]
    fn handles_work_across_threads() {
        let tel = Telemetry::new(4);
        let c = tel.counter("ops");
        let h = tel.histogram("lat");
        let handles: Vec<_> = (0..4)
            .map(|shard| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc(shard, 1);
                        h.observe(shard, i % 8);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(c.total(), 4000);
        assert_eq!(tel.snapshot().value("lat_count"), Some(4000.0));
    }
}
