//! Unified observability for the WFQ sorter workspace.
//!
//! The repo grew three disconnected measurement mechanisms —
//! `hwsim::AccessStats` (paper Table I memory accesses),
//! `scheduler::BufferStats`, and the per-flow reports of
//! `fairq::metrics` — none of which can answer "where did this packet's
//! latency go" across the trie, the scheduler, and the sharded
//! frontends. This crate is the single layer they all feed:
//!
//! * **[`Telemetry`]** — a metrics registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s. Every metric keeps one
//!   cache-line-padded atomic accumulator **per shard**, so the
//!   thread-per-shard frontend records without contention (each worker
//!   touches only its own cells, with relaxed atomics); shards merge
//!   only at snapshot time.
//! * **[`Tracer`]** — a bounded, cycle-stamped event ring per shard
//!   (enqueue, dequeue, drop, trie bulk-delete, virtual-clock wrap,
//!   shard handoff). Disabled tracers carry no ring at all: [`Tracer::emit`]
//!   is one branch on an `Option` and returns — zero allocation, zero
//!   synchronization. Long runs attach a streaming [`EventSink`]
//!   ([`MemorySink`], [`CallbackSink`], or the ndjson [`FileSink`]) so
//!   every event is exported instead of just the ring tail, or pull
//!   increments with [`Tracer::drain`].
//! * **[`LatencyTracker`]** / **[`EventJoiner`]** — per-flow latency
//!   attribution: sojourn histograms in circuit cycles and simulated
//!   wall-clock ns, split into buffer-residency vs. retrieve-to-departure,
//!   fed directly by the link simulations or joined from
//!   `Enqueue`/`Dequeue` event pairs by `(flow, seq)`.
//! * **[`Snapshot`]** — a deterministic, merged view with two exporters:
//!   flat JSON ([`Snapshot::to_json`], byte-stable across identical
//!   runs, the format CI baselines consume) and a human-readable table
//!   ([`Snapshot::to_table`]). External figures — the merged
//!   `AccessStats`/`BufferStats` numbers — join the same snapshot via
//!   [`Snapshot::put`].
//!
//! # Example
//!
//! ```
//! use telemetry::{GaugeMerge, Telemetry};
//!
//! let tel = Telemetry::new(2); // two shards, counters on, tracing off
//! let served = tel.counter("served");
//! let depth = tel.gauge("depth", GaugeMerge::Sum);
//! let lat = tel.histogram("latency_cycles");
//! served.inc(0, 3);
//! served.inc(1, 1);
//! depth.set(0, 5);
//! lat.observe(1, 4);
//! let snap = tel.snapshot();
//! assert_eq!(snap.value("served_total"), Some(4.0));
//! assert_eq!(snap.value("latency_cycles_p99"), Some(4.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod latency;
mod registry;
mod sink;
mod snapshot;
mod trace;

pub use histogram::{bucket_of, bucket_upper_bound, BUCKETS};
pub use latency::{EventJoiner, LatencyTracker};
pub use registry::{Counter, Gauge, GaugeMerge, Histogram, Telemetry};
pub use sink::{
    event_to_json, parse_compact_event_log, CallbackSink, CompactEncoder, EventLogFormat,
    EventSink, FileSink, MemorySink,
};
pub use snapshot::{parse_flat_json, HistogramSnapshot, Snapshot};
pub use trace::{Event, EventKind, Tracer};
