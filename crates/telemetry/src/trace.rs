//! Cycle-stamped bounded event tracing.
//!
//! Every shard owns a bounded ring of [`Event`]s; when the ring is full
//! the oldest event is evicted (and counted), so tracing a long run
//! keeps the *last* `capacity` events per shard — the ones that explain
//! the state the run ended in. Rings are per-shard to keep the
//! thread-per-shard frontend contention-free: only shard `i`'s worker
//! writes ring `i`, so the per-ring mutex is uncontended (the snapshot
//! reader is the only other party).
//!
//! A disabled tracer ([`Tracer::disabled`], or capacity 0) holds no
//! rings at all: [`Tracer::emit`] checks one `Option` and returns.
//!
//! Long runs that need *every* event (not just the tail) attach a
//! streaming [`EventSink`] via [`Tracer::set_sink`]: each emit is
//! forwarded to the sink before it enters the ring, and ring evictions
//! stop counting as losses (the sink already has the event). Pull-based
//! exporters can instead call [`Tracer::drain`] periodically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::sink::EventSink;
use crate::snapshot::Snapshot;

/// What happened. The meaning of an event's `a`/`b` arguments depends on
/// the kind; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A packet entered a scheduler: `a` = flow id (shard-local in a
    /// sharded frontend), `b` = the packet's per-flow sequence number —
    /// so an Enqueue/Dequeue pair for one packet joins on `(a, b)` (the
    /// join the latency attribution pipeline performs).
    Enqueue,
    /// A packet was served: `a` = flow id (shard-local in a sharded
    /// frontend), `b` = the packet's per-flow sequence number.
    Dequeue,
    /// A packet was refused: `a` = flow id, `b` = buffer capacity.
    Drop,
    /// A trie section was bulk-deleted (Fig. 6 recycling): `a` =
    /// section, `b` = markers removed.
    TrieBulkDelete,
    /// The virtual clock hit the top of the tag range: `a` = 1 if the
    /// saturate policy clamped (0 for a wrap-mode lap advance), `b` =
    /// sections recycled.
    VclockWrap,
    /// The frontend routed a packet to a shard: `a` = global flow id,
    /// `b` = packet sequence number.
    ShardHandoff,
    /// A planned fault materialized in scheduler state: `a` = fault
    /// ledger index, `b` = the component word it struck.
    FaultInject,
    /// A detector (parity, scrub, or structural check) caught a fault:
    /// `a` = fault ledger index (`u64::MAX` for an unattributed alarm),
    /// `b` = the word the detection fired on.
    FaultDetect,
    /// The scrubber repaired a trie section: `a` = section, `b` =
    /// markers re-inserted.
    Repair,
    /// A flow's queued packets left a scheduler for another shard:
    /// `a` = flow id (global when the frontend installed a map), `b` =
    /// packets extracted.
    MigrateOut,
    /// A migrated flow's packets were installed into a scheduler:
    /// `a` = flow id (global when the frontend installed a map), `b` =
    /// packets installed.
    MigrateIn,
}

impl EventKind {
    /// Stable lowercase name (used by the table exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Drop => "drop",
            EventKind::TrieBulkDelete => "trie_bulk_delete",
            EventKind::VclockWrap => "vclock_wrap",
            EventKind::ShardHandoff => "shard_handoff",
            EventKind::FaultInject => "fault_inject",
            EventKind::FaultDetect => "fault_detect",
            EventKind::Repair => "repair",
            EventKind::MigrateOut => "migrate_out",
            EventKind::MigrateIn => "migrate_in",
        }
    }

    /// Stable numeric code (the compact event-log encoding). Codes are
    /// append-only: existing values never change meaning.
    pub fn code(&self) -> u8 {
        match self {
            EventKind::Enqueue => 0,
            EventKind::Dequeue => 1,
            EventKind::Drop => 2,
            EventKind::TrieBulkDelete => 3,
            EventKind::VclockWrap => 4,
            EventKind::ShardHandoff => 5,
            EventKind::FaultInject => 6,
            EventKind::FaultDetect => 7,
            EventKind::Repair => 8,
            EventKind::MigrateOut => 9,
            EventKind::MigrateIn => 10,
        }
    }

    /// Inverse of [`EventKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::Enqueue,
            1 => EventKind::Dequeue,
            2 => EventKind::Drop,
            3 => EventKind::TrieBulkDelete,
            4 => EventKind::VclockWrap,
            5 => EventKind::ShardHandoff,
            6 => EventKind::FaultInject,
            7 => EventKind::FaultDetect,
            8 => EventKind::Repair,
            9 => EventKind::MigrateOut,
            10 => EventKind::MigrateIn,
            _ => return None,
        })
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The shard (port) the event happened on.
    pub shard: u32,
    /// The shard's circuit cycle count when the event was recorded.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// First argument (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second argument (kind-specific, see [`EventKind`]).
    pub b: u64,
}

struct Ring {
    events: VecDeque<Event>,
    evicted: u64,
}

struct Rings {
    capacity: usize,
    per_shard: Box<[Mutex<Ring>]>,
    /// Fast-path flag mirroring `sink.is_some()` so emits without a sink
    /// never touch the sink mutex.
    has_sink: AtomicBool,
    sink: Mutex<Option<Box<dyn EventSink>>>,
}

/// Handle to the per-shard event rings; cheap to clone, `None` inside
/// when disabled.
#[derive(Clone)]
pub struct Tracer {
    rings: Option<Arc<Rings>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Self { rings: None }
    }

    /// A tracer with a ring of `capacity` events per shard; capacity 0
    /// yields a disabled tracer.
    pub fn new(shards: usize, capacity: usize) -> Self {
        if capacity == 0 {
            return Self::disabled();
        }
        Self {
            rings: Some(Arc::new(Rings {
                capacity,
                per_shard: (0..shards)
                    .map(|_| {
                        Mutex::new(Ring {
                            events: VecDeque::with_capacity(capacity),
                            evicted: 0,
                        })
                    })
                    .collect(),
                has_sink: AtomicBool::new(false),
                sink: Mutex::new(None),
            })),
        }
    }

    /// Number of shards the tracer records for (0 when disabled).
    pub fn shards(&self) -> usize {
        self.rings.as_ref().map_or(0, |r| r.per_shard.len())
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.rings.is_some()
    }

    /// Records one event on `shard`'s ring, evicting the oldest if full.
    ///
    /// With a sink attached ([`Tracer::set_sink`]) the event is streamed
    /// to the sink first, and a subsequent ring eviction is *not*
    /// counted as a loss — the sink already holds the event.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled tracer only).
    #[inline]
    pub fn emit(&self, shard: usize, cycle: u64, kind: EventKind, a: u64, b: u64) {
        let Some(rings) = &self.rings else {
            return;
        };
        let event = Event {
            shard: shard as u32,
            cycle,
            kind,
            a,
            b,
        };
        let mut streamed = false;
        if rings.has_sink.load(Ordering::Acquire) {
            let mut sink = rings.sink.lock().expect("sink lock");
            if let Some(sink) = sink.as_mut() {
                sink.record(&event);
                streamed = true;
            }
        }
        let mut ring = rings.per_shard[shard].lock().expect("ring lock");
        if ring.events.len() == rings.capacity {
            ring.events.pop_front();
            if !streamed {
                ring.evicted += 1;
            }
        }
        ring.events.push_back(event);
    }

    /// Attaches a streaming sink; every subsequent [`Tracer::emit`] is
    /// forwarded to it at emit time. Returns the previously attached
    /// sink, if any. On a disabled tracer the sink is handed straight
    /// back (no event would ever reach it).
    pub fn set_sink(&self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        let Some(rings) = &self.rings else {
            return Some(sink);
        };
        let mut slot = rings.sink.lock().expect("sink lock");
        let prev = slot.replace(sink);
        rings.has_sink.store(true, Ordering::Release);
        prev
    }

    /// Detaches and returns the streaming sink (call
    /// [`EventSink::flush`] on it to surface deferred I/O errors).
    /// Subsequent ring evictions count as losses again.
    pub fn take_sink(&self) -> Option<Box<dyn EventSink>> {
        let rings = self.rings.as_ref()?;
        let mut slot = rings.sink.lock().expect("sink lock");
        rings.has_sink.store(false, Ordering::Release);
        slot.take()
    }

    /// Removes and returns everything currently buffered on `shard`'s
    /// ring, oldest first, leaving the ring empty (the eviction count is
    /// untouched). Pull-based alternative to [`Tracer::set_sink`] for
    /// incremental export of long runs.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled tracer only).
    pub fn drain(&self, shard: usize) -> Vec<Event> {
        let Some(rings) = &self.rings else {
            return Vec::new();
        };
        let mut ring = rings.per_shard[shard].lock().expect("ring lock");
        ring.events.drain(..).collect()
    }

    /// Merges every shard's ring into the snapshot in time order —
    /// sorted by `(cycle, shard)`, ties preserving per-shard emit order
    /// (per-shard cycle stamps are monotone, so a stable sort is a true
    /// merge) — together with the eviction count. The order is
    /// deterministic even when shards raced in real time, and identical
    /// logical runs export identical streams regardless of shard count.
    pub fn collect_into(&self, snap: &mut Snapshot) {
        let Some(rings) = &self.rings else {
            return;
        };
        let mut events = Vec::new();
        let mut evicted = 0;
        for ring in rings.per_shard.iter() {
            let ring = ring.lock().expect("ring lock");
            events.extend(ring.events.iter().copied());
            evicted += ring.evicted;
        }
        events.sort_by_key(|e| (e.cycle, e.shard));
        snap.set_events(events, evicted);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={})", self.is_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.emit(0, 1, EventKind::Enqueue, 2, 3);
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        assert_eq!(snap.events().len(), 0);
        assert!(!Tracer::new(4, 0).is_enabled(), "capacity 0 disables");
    }

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let t = Tracer::new(1, 3);
        for i in 0..5 {
            t.emit(0, i, EventKind::Dequeue, i, 0);
        }
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        let cycles: Vec<u64> = snap.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(snap.value("events_evicted"), Some(2.0));
        assert_eq!(snap.value("events_captured"), Some(3.0));
    }

    #[test]
    fn events_merge_time_ordered_across_shards() {
        // Regression: collect_into used to concatenate shard-major, so
        // two shards whose cycles interleave exported a permuted stream.
        let t = Tracer::new(2, 8);
        t.emit(1, 10, EventKind::Enqueue, 0, 0);
        t.emit(0, 5, EventKind::Enqueue, 1, 0);
        t.emit(0, 20, EventKind::Dequeue, 1, 0);
        t.emit(1, 15, EventKind::Dequeue, 0, 0);
        let mut snap = Snapshot::empty(2);
        t.collect_into(&mut snap);
        let order: Vec<(u64, u32)> = snap.events().iter().map(|e| (e.cycle, e.shard)).collect();
        assert_eq!(
            order,
            vec![(5, 0), (10, 1), (15, 1), (20, 0)],
            "events must merge by (cycle, shard), not shard-major"
        );
    }

    #[test]
    fn equal_cycles_tie_break_by_shard_then_emit_order() {
        let t = Tracer::new(2, 8);
        t.emit(1, 4, EventKind::Enqueue, 10, 0);
        t.emit(0, 4, EventKind::Enqueue, 20, 0);
        t.emit(0, 4, EventKind::Dequeue, 21, 0);
        let mut snap = Snapshot::empty(2);
        t.collect_into(&mut snap);
        let order: Vec<(u32, u64)> = snap.events().iter().map(|e| (e.shard, e.a)).collect();
        assert_eq!(order, vec![(0, 20), (0, 21), (1, 10)]);
    }

    #[test]
    fn sink_sees_every_event_and_evictions_stop_counting_as_losses() {
        let t = Tracer::new(1, 2);
        let sink = crate::sink::MemorySink::new();
        assert!(t.set_sink(Box::new(sink.clone())).is_none());
        for i in 0..5 {
            t.emit(0, i, EventKind::Enqueue, i, 0);
        }
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        assert_eq!(snap.value("events_evicted"), Some(0.0), "sink lost nothing");
        assert_eq!(snap.value("events_captured"), Some(2.0), "ring keeps tail");
        let streamed: Vec<u64> = sink.events().iter().map(|e| e.cycle).collect();
        assert_eq!(streamed, vec![0, 1, 2, 3, 4], "sink streamed all 5");

        // Detaching restores loss accounting.
        assert!(t.take_sink().is_some());
        t.emit(0, 5, EventKind::Enqueue, 5, 0);
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        assert_eq!(snap.value("events_evicted"), Some(1.0));
        assert_eq!(sink.len(), 5, "detached sink sees no new events");
    }

    #[test]
    fn set_sink_on_disabled_tracer_hands_the_sink_back() {
        let t = Tracer::disabled();
        let sink = crate::sink::MemorySink::new();
        assert!(t.set_sink(Box::new(sink)).is_some());
        assert!(t.take_sink().is_none());
        assert_eq!(t.shards(), 0);
    }

    #[test]
    fn drain_empties_one_ring_and_preserves_order() {
        let t = Tracer::new(2, 4);
        assert_eq!(t.shards(), 2);
        t.emit(0, 1, EventKind::Enqueue, 0, 0);
        t.emit(0, 2, EventKind::Dequeue, 0, 0);
        t.emit(1, 3, EventKind::Enqueue, 9, 0);
        let drained = t.drain(0);
        let cycles: Vec<u64> = drained.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert!(t.drain(0).is_empty(), "drain leaves the ring empty");
        assert_eq!(t.drain(1).len(), 1, "other shards untouched");
        assert!(Tracer::disabled().drain(0).is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::TrieBulkDelete.name(), "trie_bulk_delete");
        assert_eq!(EventKind::VclockWrap.name(), "vclock_wrap");
        assert_eq!(EventKind::FaultInject.name(), "fault_inject");
        assert_eq!(EventKind::FaultDetect.name(), "fault_detect");
        assert_eq!(EventKind::Repair.name(), "repair");
        assert_eq!(EventKind::MigrateOut.name(), "migrate_out");
        assert_eq!(EventKind::MigrateIn.name(), "migrate_in");
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=10u8 {
            let kind = EventKind::from_code(code).expect("assigned code");
            assert_eq!(kind.code(), code);
        }
        assert_eq!(EventKind::from_code(11), None);
        assert_eq!(EventKind::from_code(255), None);
    }
}
