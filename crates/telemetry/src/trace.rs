//! Cycle-stamped bounded event tracing.
//!
//! Every shard owns a bounded ring of [`Event`]s; when the ring is full
//! the oldest event is evicted (and counted), so tracing a long run
//! keeps the *last* `capacity` events per shard — the ones that explain
//! the state the run ended in. Rings are per-shard to keep the
//! thread-per-shard frontend contention-free: only shard `i`'s worker
//! writes ring `i`, so the per-ring mutex is uncontended (the snapshot
//! reader is the only other party).
//!
//! A disabled tracer ([`Tracer::disabled`], or capacity 0) holds no
//! rings at all: [`Tracer::emit`] checks one `Option` and returns.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::snapshot::Snapshot;

/// What happened. The meaning of an event's `a`/`b` arguments depends on
/// the kind; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A packet entered a scheduler: `a` = flow id (shard-local in a
    /// sharded frontend), `b` = the quantized tag tick.
    Enqueue,
    /// A packet was served: `a` = flow id, `b` = queue depth afterwards.
    Dequeue,
    /// A packet was refused: `a` = flow id, `b` = buffer capacity.
    Drop,
    /// A trie section was bulk-deleted (Fig. 6 recycling): `a` =
    /// section, `b` = markers removed.
    TrieBulkDelete,
    /// The virtual clock hit the top of the tag range: `a` = 1 if the
    /// saturate policy clamped (0 for a wrap-mode lap advance), `b` =
    /// sections recycled.
    VclockWrap,
    /// The frontend routed a packet to a shard: `a` = global flow id,
    /// `b` = packet sequence number.
    ShardHandoff,
}

impl EventKind {
    /// Stable lowercase name (used by the table exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Drop => "drop",
            EventKind::TrieBulkDelete => "trie_bulk_delete",
            EventKind::VclockWrap => "vclock_wrap",
            EventKind::ShardHandoff => "shard_handoff",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The shard (port) the event happened on.
    pub shard: u32,
    /// The shard's circuit cycle count when the event was recorded.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// First argument (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second argument (kind-specific, see [`EventKind`]).
    pub b: u64,
}

struct Ring {
    events: VecDeque<Event>,
    evicted: u64,
}

struct Rings {
    capacity: usize,
    per_shard: Box<[Mutex<Ring>]>,
}

/// Handle to the per-shard event rings; cheap to clone, `None` inside
/// when disabled.
#[derive(Clone)]
pub struct Tracer {
    rings: Option<Arc<Rings>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Self { rings: None }
    }

    /// A tracer with a ring of `capacity` events per shard; capacity 0
    /// yields a disabled tracer.
    pub fn new(shards: usize, capacity: usize) -> Self {
        if capacity == 0 {
            return Self::disabled();
        }
        Self {
            rings: Some(Arc::new(Rings {
                capacity,
                per_shard: (0..shards)
                    .map(|_| {
                        Mutex::new(Ring {
                            events: VecDeque::with_capacity(capacity),
                            evicted: 0,
                        })
                    })
                    .collect(),
            })),
        }
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.rings.is_some()
    }

    /// Records one event on `shard`'s ring, evicting the oldest if full.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range (enabled tracer only).
    #[inline]
    pub fn emit(&self, shard: usize, cycle: u64, kind: EventKind, a: u64, b: u64) {
        let Some(rings) = &self.rings else {
            return;
        };
        let mut ring = rings.per_shard[shard].lock().expect("ring lock");
        if ring.events.len() == rings.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(Event {
            shard: shard as u32,
            cycle,
            kind,
            a,
            b,
        });
    }

    /// Copies every shard's ring (shard-major, oldest first — a
    /// deterministic order even when shards raced in real time) into the
    /// snapshot, together with the eviction count.
    pub fn collect_into(&self, snap: &mut Snapshot) {
        let Some(rings) = &self.rings else {
            return;
        };
        let mut events = Vec::new();
        let mut evicted = 0;
        for ring in rings.per_shard.iter() {
            let ring = ring.lock().expect("ring lock");
            events.extend(ring.events.iter().copied());
            evicted += ring.evicted;
        }
        snap.set_events(events, evicted);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={})", self.is_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.emit(0, 1, EventKind::Enqueue, 2, 3);
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        assert_eq!(snap.events().len(), 0);
        assert!(!Tracer::new(4, 0).is_enabled(), "capacity 0 disables");
    }

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let t = Tracer::new(1, 3);
        for i in 0..5 {
            t.emit(0, i, EventKind::Dequeue, i, 0);
        }
        let mut snap = Snapshot::empty(1);
        t.collect_into(&mut snap);
        let cycles: Vec<u64> = snap.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert_eq!(snap.value("events_evicted"), Some(2.0));
        assert_eq!(snap.value("events_captured"), Some(3.0));
    }

    #[test]
    fn events_are_shard_major() {
        let t = Tracer::new(2, 8);
        t.emit(1, 10, EventKind::Enqueue, 0, 0);
        t.emit(0, 20, EventKind::Enqueue, 0, 0);
        let mut snap = Snapshot::empty(2);
        t.collect_into(&mut snap);
        let shards: Vec<u32> = snap.events().iter().map(|e| e.shard).collect();
        assert_eq!(shards, vec![0, 1], "shard-major, not timestamp order");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::TrieBulkDelete.name(), "trie_bulk_delete");
        assert_eq!(EventKind::VclockWrap.name(), "vclock_wrap");
    }
}
