//! Deterministic snapshots and their exporters.
//!
//! A [`Snapshot`] is the merged, frozen view of a registry (plus any
//! externally supplied figures — see [`Snapshot::put`]). Two exporters:
//!
//! * [`Snapshot::to_json`] — a **flat** JSON object of numeric metrics
//!   with keys in sorted order. Identical runs produce byte-identical
//!   files, so CI can `diff` two snapshots for determinism and feed one
//!   to the `check_regression` gate (the same flat shape the bench
//!   harness emits).
//! * [`Snapshot::to_table`] — a human-readable report: counters, gauges,
//!   histogram quantiles, and the traced event log.

use crate::histogram::{bucket_upper_bound, BUCKETS};
use crate::registry::GaugeMerge;
use crate::trace::Event;

/// A merged histogram: bucket counts plus exact sum and max.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Per-bucket observation counts, indexed by [`crate::bucket_of`]
    /// (exact buckets `0..=16`, then one per power of two).
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (mean = sum / count).
    pub sum: u64,
    /// Largest observed value (exact, not a bucket bound).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw bucket counts.
    pub fn from_buckets(name: String, buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        assert_eq!(buckets.len(), BUCKETS, "bucket vector has fixed geometry");
        let count = buckets.iter().sum();
        Self {
            name,
            buckets,
            count,
            sum,
            max,
        }
    }

    /// The value at or below which a fraction `q` (0..=1) of
    /// observations fall, reported as the containing bucket's inclusive
    /// upper bound (exact for values ≤ 16). Returns 0 for an empty
    /// histogram; `q = 1` reports the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's bound is u64::MAX; the exact max is
                // the tighter (and still deterministic) answer.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen, merged view of a registry; see the module docs.
#[derive(Debug, Clone)]
pub struct Snapshot {
    shards: usize,
    counters: Vec<(String, Vec<u64>)>,
    gauges: Vec<(String, GaugeMerge, Vec<u64>)>,
    histograms: Vec<HistogramSnapshot>,
    events: Vec<Event>,
    events_evicted: u64,
    has_events: bool,
    extra: Vec<(String, f64)>,
}

impl Snapshot {
    /// An empty snapshot over `shards` shards.
    pub fn empty(shards: usize) -> Self {
        Self {
            shards,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
            events_evicted: 0,
            has_events: false,
            extra: Vec::new(),
        }
    }

    /// Number of shards the snapshot was taken over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Adds a counter's per-shard values.
    pub fn add_counter(&mut self, name: String, per_shard: Vec<u64>) {
        self.counters.push((name, per_shard));
    }

    /// Adds a gauge's per-shard values and merge rule.
    pub fn add_gauge(&mut self, name: String, merge: GaugeMerge, per_shard: Vec<u64>) {
        self.gauges.push((name, merge, per_shard));
    }

    /// Adds a merged histogram.
    pub fn add_histogram(&mut self, hist: HistogramSnapshot) {
        self.histograms.push(hist);
    }

    /// Installs the traced event log (done by `Tracer::collect_into`).
    pub fn set_events(&mut self, events: Vec<Event>, evicted: u64) {
        self.events = events;
        self.events_evicted = evicted;
        self.has_events = true;
    }

    /// The traced events, merged in time order — sorted by
    /// `(cycle, shard)`, ties preserving per-shard emit order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Adds one externally computed numeric figure — the bridge that
    /// routes `AccessStats`/`BufferStats`-style numbers through the same
    /// snapshot as the registry metrics.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not a `[A-Za-z0-9_]` slug or `value` is not
    /// finite (the JSON exporter's contract).
    pub fn put(&mut self, key: &str, value: f64) {
        assert!(
            !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "snapshot key {key:?} must be a [A-Za-z0-9_] slug"
        );
        assert!(value.is_finite(), "snapshot value for {key} is not finite");
        self.extra.push((key.to_string(), value));
    }

    /// Looks up one value in the flattened numeric view (test/debug).
    pub fn value(&self, key: &str) -> Option<f64> {
        self.flatten()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The flattened numeric view: every counter (`_total` plus
    /// `_port{i}` when sharded), gauge (merged plus per-shard),
    /// histogram summary (`_count`, `_mean`, `_p50`, `_p90`, `_p99`,
    /// `_max`), event totals, and [`Snapshot::put`] figures — sorted by
    /// key.
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for (name, per_shard) in &self.counters {
            let total: u64 = per_shard.iter().sum();
            out.push((format!("{name}_total"), total as f64));
            if self.shards > 1 {
                for (i, v) in per_shard.iter().enumerate() {
                    out.push((format!("{name}_port{i}"), *v as f64));
                }
            }
        }
        for (name, merge, per_shard) in &self.gauges {
            let merged: u64 = match merge {
                GaugeMerge::Sum => per_shard.iter().sum(),
                GaugeMerge::Max => per_shard.iter().copied().max().unwrap_or(0),
            };
            out.push((name.clone(), merged as f64));
            if self.shards > 1 {
                for (i, v) in per_shard.iter().enumerate() {
                    out.push((format!("{name}_port{i}"), *v as f64));
                }
            }
        }
        for h in &self.histograms {
            out.push((format!("{}_count", h.name), h.count as f64));
            out.push((format!("{}_mean", h.name), h.mean()));
            out.push((format!("{}_p50", h.name), h.quantile(0.50) as f64));
            out.push((format!("{}_p90", h.name), h.quantile(0.90) as f64));
            out.push((format!("{}_p99", h.name), h.quantile(0.99) as f64));
            out.push((format!("{}_max", h.name), h.max as f64));
        }
        if self.has_events {
            out.push(("events_captured".into(), self.events.len() as f64));
            out.push(("events_evicted".into(), self.events_evicted as f64));
        }
        out.extend(self.extra.iter().cloned());
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Exports the flattened view as a flat JSON object, keys sorted —
    /// byte-stable across identical runs.
    pub fn to_json(&self) -> String {
        let pairs = self.flatten();
        let mut s = String::from("{\n");
        for (i, (k, v)) in pairs.iter().enumerate() {
            s.push_str(&format!("  \"{k}\": {v}"));
            s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
        }
        s.push_str("}\n");
        s
    }

    /// Renders the human-readable report: counters, gauges, histogram
    /// quantiles, and (when tracing was enabled) the event log.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("== telemetry ({} shard(s)) ==\n", self.shards));
        if !self.counters.is_empty() {
            s.push_str("\ncounters:\n");
            for (name, per_shard) in &self.counters {
                let total: u64 = per_shard.iter().sum();
                if self.shards > 1 {
                    s.push_str(&format!("  {name:<24} {total:>12}  {per_shard:?}\n"));
                } else {
                    s.push_str(&format!("  {name:<24} {total:>12}\n"));
                }
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("\ngauges:\n");
            for (name, merge, per_shard) in &self.gauges {
                let merged: u64 = match merge {
                    GaugeMerge::Sum => per_shard.iter().sum(),
                    GaugeMerge::Max => per_shard.iter().copied().max().unwrap_or(0),
                };
                let rule = match merge {
                    GaugeMerge::Sum => "sum",
                    GaugeMerge::Max => "max",
                };
                if self.shards > 1 {
                    s.push_str(&format!(
                        "  {name:<24} {merged:>12} ({rule})  {per_shard:?}\n"
                    ));
                } else {
                    s.push_str(&format!("  {name:<24} {merged:>12}\n"));
                }
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("\nhistograms:\n");
            s.push_str(&format!(
                "  {:<24} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
                "name", "count", "mean", "p50", "p90", "p99", "max"
            ));
            for h in &self.histograms {
                s.push_str(&format!(
                    "  {:<24} {:>10} {:>10.2} {:>8} {:>8} {:>8} {:>8}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max,
                ));
            }
        }
        if !self.extra.is_empty() {
            let mut extra = self.extra.clone();
            extra.sort_by(|a, b| a.0.cmp(&b.0));
            s.push_str("\nmerged stats:\n");
            for (k, v) in &extra {
                s.push_str(&format!("  {k:<32} {v}\n"));
            }
        }
        if self.has_events {
            s.push_str(&format!(
                "\nevents ({} captured, {} evicted):\n",
                self.events.len(),
                self.events_evicted
            ));
            s.push_str(&format!(
                "  {:>5} {:>12} {:<18} {:>12} {:>12}\n",
                "shard", "cycle", "kind", "a", "b"
            ));
            for e in &self.events {
                s.push_str(&format!(
                    "  {:>5} {:>12} {:<18} {:>12} {:>12}\n",
                    e.shard,
                    e.cycle,
                    e.kind.name(),
                    e.a,
                    e.b,
                ));
            }
        }
        s
    }
}

/// Parses the flat `{"key": number, ...}` objects [`Snapshot::to_json`]
/// emits (whitespace-insensitive; no nesting, no string values).
/// Returns `None` if the text is not such an object.
pub fn parse_flat_json(text: &str) -> Option<Vec<(String, f64)>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
    let mut out = Vec::new();
    if body.is_empty() {
        return Some(out);
    }
    for entry in body.split(',') {
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value: f64 = value.trim().parse().ok()?;
        out.push((key.to_string(), value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;
    use crate::trace::EventKind;

    #[test]
    fn json_is_sorted_flat_and_round_trips() {
        let tel = Telemetry::new(2);
        tel.counter("zeta").inc(0, 1);
        tel.counter("alpha").inc(1, 2);
        let mut snap = tel.snapshot();
        snap.put("hw_trie_reads", 123.0);
        let json = snap.to_json();
        let parsed = parse_flat_json(&json).expect("parseable");
        let keys: Vec<&str> = parsed.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "keys must come out sorted");
        assert!(keys.contains(&"alpha_total"));
        assert!(keys.contains(&"zeta_port0"));
        assert!(keys.contains(&"hw_trie_reads"));
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let run = || {
            let tel = Telemetry::with_tracing(2, 4);
            tel.counter("ops").inc(0, 7);
            tel.histogram("lat").observe(1, 4);
            tel.tracer().emit(0, 40, EventKind::Enqueue, 1, 2);
            tel.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn table_renders_all_sections() {
        let tel = Telemetry::with_tracing(2, 4);
        tel.counter("served").inc(0, 1);
        tel.gauge("depth", GaugeMerge::Sum).set(1, 3);
        tel.histogram("lat").observe(0, 4);
        tel.tracer().emit(1, 8, EventKind::Drop, 5, 64);
        let mut snap = tel.snapshot();
        snap.put("agg_buf_peak", 9.0);
        let table = snap.to_table();
        for needle in [
            "counters:",
            "served",
            "gauges:",
            "depth",
            "histograms:",
            "lat",
            "merged stats:",
            "agg_buf_peak",
            "events",
            "drop",
        ] {
            assert!(table.contains(needle), "missing {needle}:\n{table}");
        }
    }

    #[test]
    #[should_panic(expected = "slug")]
    fn put_rejects_bad_keys() {
        Snapshot::empty(1).put("bad key", 1.0);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn put_rejects_non_finite() {
        Snapshot::empty(1).put("k", f64::NAN);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = HistogramSnapshot::from_buckets("h".into(), vec![0; BUCKETS], 0, 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
